//! Paper Table 8 — scheduler overheads: time for one scheduling decision
//! with many tasks pending.
//!
//! The paper measures the YARN resource manager's heartbeat processing
//! time with 10 k/50 k pending tasks and finds Tetris costs about the same
//! as stock YARN. Here we measure one full `schedule()` invocation (the
//! work triggered by a heartbeat that freed resources) at several backlog
//! sizes, for Tetris and the baselines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetris_baselines::{CapacityScheduler, DrfScheduler, FairScheduler};
use tetris_bench::{bench_cluster, pending_workload};
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_sim::probe::{IncrementalProbe, RecomputeProbe, ScheduleProbe};
use tetris_sim::{MarkAllDirty, SchedulerPolicy, SimConfig};

fn bench_overheads(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_decision");
    group.sample_size(10);

    for &pending in &[2_000usize, 10_000, 50_000, 100_000] {
        let probe = ScheduleProbe::new(
            bench_cluster(100),
            pending_workload(pending),
            SimConfig::default(),
        );
        let actual = probe.pending();

        type PolicyMaker = Box<dyn Fn() -> Box<dyn SchedulerPolicy>>;
        let mk_policies: Vec<(&str, PolicyMaker)> = vec![
            (
                "tetris",
                Box::new(|| Box::new(TetrisScheduler::new(TetrisConfig::default()))),
            ),
            ("fair", Box::new(|| Box::new(FairScheduler::new()))),
            ("capacity", Box::new(|| Box::new(CapacityScheduler::new()))),
            ("drf", Box::new(|| Box::new(DrfScheduler::new()))),
        ];
        for (name, mk) in mk_policies {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{actual}_pending")),
                &actual,
                |b, _| {
                    let mut policy = mk();
                    b.iter(|| probe.measure(policy.as_mut()));
                },
            );
        }
    }
    group.finish();
}

/// Incremental rate recomputation: a full-cluster link invalidation (the
/// worst case `recompute_dirty` sees — every live link dirty at once)
/// at several flow-table sizes. The per-event hot path this exercises is
/// gather + generation-stamp dedup + one `flow_rate` evaluation per
/// affected flow.
fn bench_recompute_dirty(c: &mut Criterion) {
    let mut group = c.benchmark_group("recompute_dirty");
    group.sample_size(10);

    for &pending in &[2_000usize, 10_000, 50_000] {
        let mut policy = TetrisScheduler::new(TetrisConfig::default());
        let mut probe = RecomputeProbe::new(
            bench_cluster(100),
            pending_workload(pending),
            SimConfig::default(),
            &mut policy,
        );
        let flows = probe.flows();
        group.bench_with_input(
            BenchmarkId::new("full_invalidation", format!("{flows}_flows")),
            &flows,
            |b, _| b.iter(|| probe.measure()),
        );
    }
    group.finish();
}

/// The event-driven warm path: the cluster is packed by
/// [`IncrementalProbe::settle`], then every iteration is one heartbeat —
/// drain a machine, deliver its [`SchedulerEvent`]s, and make one
/// decision. `tetris_incremental` answers from event-synced per-job
/// caches; `tetris_mark_all_dirty` is the same policy behind the
/// [`MarkAllDirty`] adapter, rebuilding everything from the view each
/// time. The probe asserts both propose byte-identical assignments at
/// every heartbeat, so the two series time the same decisions.
///
/// [`SchedulerEvent`]: tetris_sim::SchedulerEvent
fn bench_warm_heartbeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_heartbeat");
    group.sample_size(10);

    for &pending in &[2_000usize, 10_000, 50_000, 100_000] {
        let mut probe = IncrementalProbe::new(
            bench_cluster(100),
            pending_workload(pending),
            SimConfig::default(),
        );
        let actual = probe.pending();
        let mut inc = TetrisScheduler::new(TetrisConfig::default());
        let mut full = MarkAllDirty(TetrisScheduler::new(TetrisConfig::default()));
        probe.settle(&mut inc, &mut full);
        group.bench_with_input(
            BenchmarkId::new("tetris_incremental", format!("{actual}_pending")),
            &actual,
            |b, _| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let hb = probe.warm_heartbeat(&mut inc, &mut full);
                        total += Duration::from_nanos(hb.inc_ns);
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tetris_mark_all_dirty", format!("{actual}_pending")),
            &actual,
            |b, _| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let hb = probe.warm_heartbeat(&mut inc, &mut full);
                        total += Duration::from_nanos(hb.oracle_ns);
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_overheads,
    bench_recompute_dirty,
    bench_warm_heartbeat
);
criterion_main!(benches);
