//! Crash-recovery costs (DESIGN.md §15): one complete engine run bare vs
//! with the write-ahead decision journal attached, and the recovery path
//! itself — restore the journal's last checkpoint and re-derive the tail
//! to the byte-identical outcome.
//!
//! Two journaled points separate the WAL's two cost classes. `wal_only`
//! (one genesis checkpoint, then pure decision records) measures the
//! per-heartbeat record appends; `journaled_run` at the default
//! checkpoint cadence adds the periodic full-state snapshots, which
//! dominate — a snapshot serializes the entire engine state, so its cost
//! is paid per `checkpoint_every` heartbeats regardless of how cheap the
//! simulated heartbeats in between are. A simulator burns through
//! heartbeats about six orders of magnitude faster than the multi-second
//! cadence of a real cluster, so read the snapshot overhead relative to
//! the checkpoint count, not to the bare run's wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetris_bench::bench_cluster;
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_sim::{Journal, RunResult, SimConfig, Simulation};
use tetris_workload::{Workload, WorkloadSuiteConfig};

fn bench_journal(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal");
    group.sample_size(10);

    let w = WorkloadSuiteConfig::scaled(10, 0.05).generate(5);
    let tasks = w.num_tasks();
    let mut cfg = SimConfig::default();
    cfg.seed = 5;
    let sim = |w: &Workload, cfg: &SimConfig| {
        Simulation::build(bench_cluster(10), w.clone())
            .scheduler(TetrisScheduler::new(TetrisConfig::default()))
            .config(cfg.clone())
    };

    group.bench_with_input(
        BenchmarkId::new("bare_run", format!("{tasks}_tasks")),
        &w,
        |b, w| b.iter(|| sim(w, &cfg).run()),
    );
    group.bench_with_input(
        BenchmarkId::new("journaled_run", format!("{tasks}_tasks")),
        &w,
        |b, w| {
            b.iter(|| {
                let mut j = Journal::new();
                sim(w, &cfg).run_result(Some(&mut j))
            })
        },
    );
    // Push every periodic snapshot past the end of the run: what remains
    // is the genesis checkpoint plus the per-decision records.
    let mut wal_cfg = cfg.clone();
    wal_cfg.checkpoint_every = u64::MAX;
    group.bench_with_input(
        BenchmarkId::new("wal_only", format!("{tasks}_tasks")),
        &w,
        |b, w| {
            b.iter(|| {
                let mut j = Journal::new();
                sim(w, &wal_cfg).run_result(Some(&mut j))
            })
        },
    );

    // Recovery input: the journal of a completed run. Recovering from it
    // restores the last checkpoint and replays the committed tail — the
    // same path a crashed run takes, minus torn-tail discard.
    let mut j = Journal::new();
    match sim(&w, &cfg).run_result(Some(&mut j)) {
        RunResult::Completed(_) => {}
        RunResult::Crashed { heartbeat } => unreachable!("no crash configured ({heartbeat})"),
    }
    group.bench_with_input(
        BenchmarkId::new("recover", format!("{tasks}_tasks")),
        &w,
        |b, w| b.iter(|| sim(w, &cfg).recover(&j).expect("recovers")),
    );
    group.finish();
}

criterion_group!(benches, bench_journal);
criterion_main!(benches);
