//! Throughput of the five alignment scorers (paper Table 7 candidates).
//! Scoring is the inner loop of the packer — `schedule()` evaluates one
//! score per (candidate, machine) pair — so it must stay in the
//! few-nanosecond range.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tetris_core::AlignmentKind;
use tetris_resources::{units::GB, MachineSpec, Resource, ResourceVec};

fn bench_alignment(c: &mut Criterion) {
    let capacity = MachineSpec::paper_large().capacity();
    let avail = capacity * 0.6;
    let demand = ResourceVec::zero()
        .with(Resource::Cpu, 2.0)
        .with(Resource::Mem, 4.0 * GB)
        .with(Resource::DiskRead, 20e6)
        .with(Resource::DiskWrite, 10e6)
        .with(Resource::NetIn, 15e6);

    let mut group = c.benchmark_group("alignment_score");
    for kind in AlignmentKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                black_box(kind.score(black_box(&demand), black_box(&avail), black_box(&capacity)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alignment);
criterion_main!(benches);
