//! Cold-pass placement cost at scale — indexed `MachineQuery` vs the
//! linear scan (DESIGN.md §13, companion to the `scale` experiment).
//!
//! The cold pass is a scheduling round with no freed hint: a burst of
//! arrivals hitting a packed cluster, where the pre-index code walked
//! every machine per candidate. Setup mirrors [`ColdPassProbe`]: a
//! saturated cluster with a 10×-machines pending backlog and four empty
//! machines for the pass to find. Each iteration times one cold
//! `schedule()` of a *fresh* `TetrisScheduler` (unsynced ⇒ no freed
//! hint ⇒ cold path; no adaptive state leaks between iterations), with
//! scheduler construction kept outside the timed window via
//! `iter_custom`. Index maintenance is not a separate setup phase — the
//! bucketed index seeds and refreshes inside the measured pass, so the
//! indexed series carries its full build+query cost.
//!
//! [`ColdPassProbe`]: tetris_sim::probe::ColdPassProbe

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_sim::probe::ColdPassProbe;

/// Pending backlog per machine, matching the `scale` experiment.
const PENDING_PER_MACHINE: usize = 10;

fn time_cold(probe: &ColdPassProbe, indexed: bool, iters: u64) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let mut policy = TetrisScheduler::new(TetrisConfig::default());
        let t0 = Instant::now();
        let placed = if indexed {
            probe.cold_schedule_indexed(&mut policy)
        } else {
            probe.cold_schedule_linear(&mut policy)
        };
        total += t0.elapsed();
        black_box(placed);
    }
    total
}

fn bench_cold_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_pass");
    group.sample_size(10);

    for &machines in &[1_000usize, 10_000, 100_000] {
        let probe = ColdPassProbe::new(machines, machines * PENDING_PER_MACHINE);
        for (name, indexed) in [("indexed", true), ("linear", false)] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{machines}_machines")),
                &machines,
                |b, _| b.iter_custom(|iters| time_cold(&probe, indexed, iters)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cold_pass);
criterion_main!(benches);
