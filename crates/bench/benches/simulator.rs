//! End-to-end engine throughput: how fast the discrete-event simulator
//! chews through a complete workload (placements, flow-rate updates,
//! completions). Guards the incremental rate-recomputation path against
//! regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetris_bench::bench_cluster;
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_sim::{GreedyFifo, Simulation};
use tetris_workload::WorkloadSuiteConfig;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_suite");
    group.sample_size(10);

    for &jobs in &[10usize, 25] {
        let w = WorkloadSuiteConfig::scaled(jobs, 0.05).generate(5);
        let tasks = w.num_tasks();
        group.bench_with_input(
            BenchmarkId::new("greedy_fifo", format!("{tasks}_tasks")),
            &w,
            |b, w| {
                b.iter(|| {
                    Simulation::build(bench_cluster(10), w.clone())
                        .scheduler(GreedyFifo::new())
                        .seed(5)
                        .run()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tetris", format!("{tasks}_tasks")),
            &w,
            |b, w| {
                b.iter(|| {
                    Simulation::build(bench_cluster(10), w.clone())
                        .scheduler(TetrisScheduler::new(TetrisConfig::default()))
                        .seed(5)
                        .run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
