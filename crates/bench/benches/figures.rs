//! Wall-clock cost of regenerating representative paper artifacts at
//! laptop scale — a regression guard for the experiment harness. (The
//! artifacts themselves are produced by `reproduce`; see tetris-expts.)

use criterion::{criterion_group, criterion_main, Criterion};
use tetris_expts::experiments::{motivating, workload_tables};
use tetris_expts::RunCtx;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("reproduce");
    group.sample_size(10);

    group.bench_function("fig1_motivating", |b| {
        b.iter(|| motivating::fig1(&RunCtx::default()))
    });
    group.bench_function("table2_correlation", |b| {
        b.iter(|| workload_tables::table2(&RunCtx::default()))
    });
    group.bench_function("fig2_heatmaps", |b| {
        b.iter(|| workload_tables::fig2(&RunCtx::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
