//! # tetris-bench
//!
//! Criterion benchmarks for the Tetris reproduction:
//!
//! * `overheads` — the paper's Table 8: time for one scheduling decision
//!   (a node-manager heartbeat's worth of matching) with thousands of
//!   tasks pending, for Tetris and the baselines;
//! * `alignment` — throughput of the five alignment scorers (Table 7's
//!   candidates);
//! * `simulator` — end-to-end simulated-work throughput of the
//!   discrete-event engine;
//! * `figures` — wall-clock cost of regenerating representative figures
//!   (guards against the experiment harness regressing).
//!
//! Run with `cargo bench -p tetris-bench`.

#![forbid(unsafe_code)]

use tetris_resources::MachineSpec;
use tetris_sim::ClusterConfig;
use tetris_workload::{Workload, WorkloadSuiteConfig};

/// A workload with at least `n` pending map tasks for the overhead
/// benches: grow the job count until the root stages hold enough tasks
/// (class sizes are drawn randomly, so the count per job varies).
pub fn pending_workload(n: usize) -> Workload {
    let mut jobs = (n / 90).max(1);
    loop {
        let mut cfg = WorkloadSuiteConfig::scaled(jobs, 0.125);
        cfg.arrival_horizon = 1.0; // everyone pending together
        let w = cfg.generate(17);
        let maps: usize = w.jobs.iter().map(|j| j.stages[0].len()).sum();
        if maps >= n {
            return w;
        }
        jobs += (jobs / 4).max(1);
    }
}

/// The benchmark cluster.
pub fn bench_cluster(machines: usize) -> ClusterConfig {
    ClusterConfig::uniform(machines, MachineSpec::paper_large())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_workload_scales() {
        let w = pending_workload(1000);
        let maps: usize = w.jobs.iter().map(|j| j.stages[0].len()).sum();
        assert!(maps >= 1000, "only {maps} maps");
        assert!(w.validate().is_ok());
    }
}
