//! # tetris-core
//!
//! The Tetris multi-resource cluster scheduler (SIGCOMM'14), the primary
//! contribution of the paper this workspace reproduces.
//!
//! Tetris packs tasks onto machines by treating both as points in a
//! six-dimensional resource space:
//!
//! * [`align`] — the **alignment score**: a capacity-normalized dot
//!   product between a task's placement-adjusted peak demands and a
//!   machine's available resources (§3.2), with a penalty for remote
//!   input, plus the four alternative scorers of Table 7;
//! * [`srtf`] — the **multi-resource SRTF** job score (total normalized
//!   resource × duration of remaining tasks, §3.3) and the `a + ε·p`
//!   combination with `ε = m·ā/p̄`;
//! * [`fairness`] — the **fairness knob** `f`: only the `⌈(1−f)·|J|⌉`
//!   jobs furthest below fair share are eligible (§3.4);
//! * [`barrier`] — the **barrier knob** `b`: stragglers of an almost-done
//!   stage feeding a barrier get absolute priority (§3.5);
//! * [`estimate`] — demand estimation from recurring jobs and phase
//!   statistics, with deliberate over-estimation when cold (§4.1);
//! * [`TetrisScheduler`] — all of the above behind the simulator's
//!   [`tetris_sim::SchedulerPolicy`] interface, feasibility-checked on
//!   every dimension at the host *and* at every remote input source, so
//!   over-allocation is impossible (§3.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod barrier;
pub mod estimate;
pub mod fairness;
mod scheduler;
pub mod srtf;

pub use align::AlignmentKind;
pub use estimate::{DemandEstimator, EstimationMode};
pub use fairness::FairnessMeasure;
pub use scheduler::{StarvationConfig, TetrisConfig, TetrisScheduler};
