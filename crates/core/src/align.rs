//! Alignment scoring: how well a task's demands pack onto a machine's
//! available resources (paper §3.2 and the Table-7 alternatives).
//!
//! All scorers operate on vectors **normalized by the machine's capacity**
//! so that numerical ranges (16 cores vs 32 GB) cannot dominate and "all
//! the resources are weighed equally".

use tetris_resources::{ResourceVec, NUM_RESOURCES};

/// Which alignment heuristic to use (paper Table 7).
///
/// The paper finds cosine similarity (the capacity-normalized dot product)
/// best on both job completion time and makespan; `L2NormDiff` does well on
/// makespan but lags on speeding up jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AlignmentKind {
    /// `Σ_r avail̂_r · demand̂_r` — the paper's choice ("cosine
    /// similarity": both vectors are normalized to machine capacity).
    #[default]
    Cosine,
    /// `−Σ_r (demand̂_r − avail̂_r)²` — smaller distance is better, so the
    /// score is negated to keep "bigger is better".
    L2NormDiff,
    /// `−Σ_r (demand̂_r / avail̂_r)²` — ratio form; demands on nearly-full
    /// dimensions are penalized hard.
    L2NormRatio,
    /// `Π_r demand̂_r` over dimensions the task uses — classic FFD-product;
    /// ignores what is actually available.
    FfdProd,
    /// `Σ_r demand̂_r` — classic FFD-sum; prefers big tasks uncondition-
    /// ally.
    FfdSum,
}

impl AlignmentKind {
    /// All variants, for the Table-7 sweep.
    pub const ALL: [AlignmentKind; 5] = [
        AlignmentKind::Cosine,
        AlignmentKind::L2NormDiff,
        AlignmentKind::L2NormRatio,
        AlignmentKind::FfdProd,
        AlignmentKind::FfdSum,
    ];

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AlignmentKind::Cosine => "cosine",
            AlignmentKind::L2NormDiff => "l2-norm-diff",
            AlignmentKind::L2NormRatio => "l2-norm-ratio",
            AlignmentKind::FfdProd => "ffd-prod",
            AlignmentKind::FfdSum => "ffd-sum",
        }
    }

    /// Score the placement of a task with (placement-adjusted) `demand` on
    /// a machine with `available` resources and `capacity`.
    ///
    /// Callers must have already established feasibility (demand ≤
    /// available); scores do not encode it. Higher is better for every
    /// variant.
    pub fn score(
        self,
        demand: &ResourceVec,
        available: &ResourceVec,
        capacity: &ResourceVec,
    ) -> f64 {
        let d = demand.normalized_by(capacity);
        // Available can be transiently negative on dims someone else
        // over-allocated; clamp for scoring.
        let a = available.clamp_non_negative().normalized_by(capacity);
        self.score_normalized(&d, &a)
    }

    /// Score from *already capacity-normalized* demand and availability —
    /// the hot-loop form: the scheduler normalizes availability once per
    /// machine and each candidate's demand once per capacity class,
    /// instead of per (candidate, machine) pair.
    pub fn score_normalized(self, d: &ResourceVec, a: &ResourceVec) -> f64 {
        match self {
            AlignmentKind::Cosine => d.dot(a),
            AlignmentKind::L2NormDiff => {
                let mut s = 0.0;
                for i in 0..NUM_RESOURCES {
                    let diff = d.0[i] - a.0[i];
                    s += diff * diff;
                }
                -s
            }
            AlignmentKind::L2NormRatio => {
                let mut s = 0.0;
                for i in 0..NUM_RESOURCES {
                    if d.0[i] > 0.0 {
                        let denom = a.0[i].max(1e-9);
                        let ratio = d.0[i] / denom;
                        s += ratio * ratio;
                    }
                }
                -s
            }
            AlignmentKind::FfdProd => {
                let mut p = 1.0;
                for i in 0..NUM_RESOURCES {
                    if d.0[i] > 0.0 {
                        p *= d.0[i];
                    }
                }
                p
            }
            AlignmentKind::FfdSum => d.sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::{units::GB, Resource};

    fn cap() -> ResourceVec {
        ResourceVec::zero()
            .with(Resource::Cpu, 16.0)
            .with(Resource::Mem, 32.0 * GB)
            .with(Resource::NetIn, 125e6)
            .with(Resource::NetOut, 125e6)
            .with(Resource::DiskRead, 200e6)
            .with(Resource::DiskWrite, 200e6)
    }

    fn task(cpu: f64, mem_gb: f64) -> ResourceVec {
        ResourceVec::zero()
            .with(Resource::Cpu, cpu)
            .with(Resource::Mem, mem_gb * GB)
    }

    #[test]
    fn cosine_prefers_bigger_aligned_tasks() {
        let c = cap();
        let avail = c;
        let small = task(1.0, 2.0);
        let big = task(4.0, 8.0);
        let k = AlignmentKind::Cosine;
        assert!(k.score(&big, &avail, &c) > k.score(&small, &avail, &c));
    }

    #[test]
    fn cosine_prefers_tasks_using_abundant_resource() {
        // Paper: "if a particular resource is abundant on a machine, then
        // tasks that require that resource will have higher scores compared
        // to tasks that use the same amount of resources overall."
        let c = cap();
        // Machine with all its network free but CPU mostly used.
        let avail = c.with(Resource::Cpu, 2.0);
        let net_task = ResourceVec::zero()
            .with(Resource::Cpu, 0.5)
            .with(Resource::NetIn, 100e6);
        let cpu_task = ResourceVec::zero().with(Resource::Cpu, 1.3);
        // Both "use similar amounts overall" in normalized terms:
        // net_task: 0.5/16 + 100/125 ≈ 0.83; cpu_task: 1.3/16 ≈ 0.08...
        // make them equal-ish: cpu_task uses 13.3 cores worth.
        let cpu_task_big = cpu_task.with(Resource::Cpu, 13.3);
        let k = AlignmentKind::Cosine;
        // cpu_task_big does not even fit avail (2 cores) — callers check
        // fit; here score alone: net aligns with abundant network.
        assert!(k.score(&net_task, &avail, &c) > k.score(&cpu_task_big, &avail, &c));
    }

    #[test]
    fn cosine_zero_for_orthogonal() {
        let c = cap();
        let avail = ResourceVec::zero().with(Resource::NetIn, 125e6);
        let cpu_only = ResourceVec::zero().with(Resource::Cpu, 4.0);
        assert_eq!(AlignmentKind::Cosine.score(&cpu_only, &avail, &c), 0.0);
    }

    #[test]
    fn l2_diff_peaks_at_exact_fill() {
        let c = cap();
        let avail = task(4.0, 8.0);
        let exact = task(4.0, 8.0);
        let under = task(1.0, 1.0);
        let k = AlignmentKind::L2NormDiff;
        assert!(k.score(&exact, &avail, &c) > k.score(&under, &avail, &c));
        assert_eq!(k.score(&exact, &avail, &c), 0.0);
    }

    #[test]
    fn ffd_scores_ignore_availability() {
        let c = cap();
        let t = task(4.0, 8.0);
        let a1 = c;
        let a2 = task(4.0, 8.0);
        for k in [AlignmentKind::FfdProd, AlignmentKind::FfdSum] {
            assert_eq!(k.score(&t, &a1, &c), k.score(&t, &a2, &c));
        }
    }

    #[test]
    fn ffd_sum_is_normalized_demand_sum() {
        let c = cap();
        let t = task(8.0, 16.0); // 0.5 + 0.5
        assert!((AlignmentKind::FfdSum.score(&t, &c, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_availability_clamped() {
        let c = cap();
        let avail = task(-4.0, 8.0);
        let t = task(1.0, 1.0);
        let s = AlignmentKind::Cosine.score(&t, &avail, &c);
        assert!(s.is_finite());
        assert!(s >= 0.0);
    }

    #[test]
    fn labels_unique() {
        let mut l: Vec<_> = AlignmentKind::ALL.iter().map(|k| k.label()).collect();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn all_scores_finite_on_stress_inputs() {
        let c = cap();
        let zero = ResourceVec::zero();
        for k in AlignmentKind::ALL {
            assert!(k.score(&zero, &zero, &c).is_finite());
            assert!(k.score(&c, &zero, &c).is_finite());
            assert!(k.score(&zero, &c, &c).is_finite());
        }
    }
}
