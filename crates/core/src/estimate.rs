//! Demand estimation (paper §4.1).
//!
//! Tetris does not assume oracle knowledge of task demands. It estimates
//! them from (a) prior runs of recurring jobs, (b) the measured statistics
//! of already-completed tasks of the same phase (tasks of a phase are
//! statistically similar), and (c) deliberate *over*-estimation when
//! neither is available — "over-estimation is better than
//! under-estimation which needlessly slows down tasks"; the resource
//! tracker reclaims what over-estimates leave idle.
//!
//! In the simulator the estimate affects the scheduler's *choices*
//! (scores, feasibility); enforcement is by true peak demand, consistent
//! with Tetris's token-bucket enforcement of allocations (§4.2).

use std::collections::BTreeSet;

use tetris_resources::ResourceVec;
use tetris_sim::ClusterView;
use tetris_workload::{JobId, TaskSpec};

/// How task demands are estimated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EstimationMode {
    /// Oracle: use true peak demands (the default for experiments, as in
    /// the paper's simulator).
    #[default]
    Exact,
    /// The paper's learning scheme: demands are known (from phase
    /// statistics / prior runs) once `warmup` tasks of the phase have
    /// finished or the job's family has completed a prior run; before
    /// that, demands are over-estimated by `overestimate`×.
    Learned {
        /// Over-estimation factor for cold phases (> 1).
        overestimate: f64,
        /// Number of finished tasks of a phase after which its statistics
        /// are considered known.
        warmup: usize,
    },
    /// Robustness testing: every rate demand is multiplied by a
    /// deterministic per-task log-normal factor with ln-space σ = `sigma`
    /// (memory is left exact: under-reserving a space resource is not an
    /// estimation error, it is an OOM). The paper argues Tetris tolerates
    /// estimation error because the tracker corrects it (§4.1); this mode
    /// quantifies that.
    Noisy {
        /// ln-space standard deviation of the multiplicative error.
        sigma: f64,
    },
}

/// Stateful demand estimator used by the Tetris scheduler.
#[derive(Debug, Clone, Default)]
pub struct DemandEstimator {
    mode_learned: Option<(f64, usize)>,
    noise_sigma: Option<f64>,
    /// Families with at least one completed prior run.
    known_families: BTreeSet<String>,
    /// Families seen active, to detect completions.
    active_families: BTreeSet<String>,
}

impl DemandEstimator {
    /// Build an estimator for the given mode.
    pub fn new(mode: EstimationMode) -> Self {
        let mut noise_sigma = None;
        let mode_learned = match mode {
            EstimationMode::Exact => None,
            EstimationMode::Learned {
                overestimate,
                warmup,
            } => {
                assert!(overestimate >= 1.0, "overestimate must be ≥ 1");
                Some((overestimate, warmup))
            }
            EstimationMode::Noisy { sigma } => {
                assert!(sigma >= 0.0 && sigma.is_finite(), "invalid sigma");
                noise_sigma = Some(sigma);
                None
            }
        };
        DemandEstimator {
            mode_learned,
            noise_sigma,
            known_families: BTreeSet::new(),
            active_families: BTreeSet::new(),
        }
    }

    /// Persistent learned state for checkpointing (DESIGN.md §15):
    /// `(known, active)` family sets, or `None` when there is nothing to
    /// carry (non-Learned modes never populate them).
    pub(crate) fn export_families(&self) -> Option<(Vec<String>, Vec<String>)> {
        if self.known_families.is_empty() && self.active_families.is_empty() {
            return None;
        }
        Some((
            self.known_families.iter().cloned().collect(),
            self.active_families.iter().cloned().collect(),
        ))
    }

    /// Restore state captured by [`export_families`]. Replaces (does not
    /// merge) both sets: import happens on a fresh estimator.
    ///
    /// [`export_families`]: DemandEstimator::export_families
    pub(crate) fn import_families(&mut self, known: Vec<String>, active: Vec<String>) {
        self.known_families = known.into_iter().collect();
        self.active_families = active.into_iter().collect();
    }

    /// Track family completions: call once per `schedule()` invocation.
    /// A family becomes "known" when a previously active job of that
    /// family is no longer active (it completed a run).
    pub fn update(&mut self, view: &ClusterView<'_>) {
        if self.mode_learned.is_none() {
            return;
        }
        let mut current: Vec<&str> = view
            .active_jobs()
            .filter_map(|j| view.job_family(j))
            .collect();
        current.sort_unstable();
        current.dedup();
        // Families that left the active set completed a run: now known.
        // Strings are only cloned when membership actually changes.
        let known = &mut self.known_families;
        self.active_families.retain(|fam| {
            let still_active = current.binary_search(&fam.as_str()).is_ok();
            if !still_active {
                known.insert(fam.clone());
            }
            still_active
        });
        for fam in current {
            if !self.active_families.contains(fam) {
                self.active_families.insert(fam.to_string());
            }
        }
    }

    /// Estimated peak demand of a task.
    ///
    /// `job` and `finished_in_stage` locate the task's phase progress;
    /// `family` is the owning job's recurring family, if any.
    pub fn estimate(
        &self,
        spec: &TaskSpec,
        _job: JobId,
        family: Option<&str>,
        finished_in_stage: usize,
    ) -> ResourceVec {
        if let Some(sigma) = self.noise_sigma {
            return noisy_demand(spec, sigma);
        }
        match self.mode_learned {
            None => spec.demand,
            Some((over, warmup)) => {
                let known_family = family.is_some_and(|f| self.known_families.contains(f));
                if known_family || finished_in_stage >= warmup {
                    spec.demand
                } else {
                    spec.demand * over
                }
            }
        }
    }
}

/// Deterministic multiplicative log-normal error per (task, resource).
fn noisy_demand(spec: &TaskSpec, sigma: f64) -> ResourceVec {
    use tetris_resources::Resource;
    let mut d = spec.demand;
    for r in Resource::ALL {
        if r == Resource::Mem {
            continue; // never misestimate a space resource
        }
        let v = d.get(r);
        if v > 0.0 {
            // splitmix64 on (uid, dim) → uniform pair → Box–Muller normal.
            let mut x = spec.uid.index() as u64 ^ ((r.index() as u64) << 56);
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) as f64 / u64::MAX as f64
            };
            let u1 = next().max(f64::EPSILON);
            let u2 = next();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            d.set(r, v * (sigma * z).exp());
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::Resource;
    use tetris_workload::TaskUid;

    fn spec() -> TaskSpec {
        TaskSpec {
            uid: TaskUid(0),
            job: JobId(0),
            stage: 0,
            index: 0,
            demand: ResourceVec::zero().with(Resource::Cpu, 2.0),
            cpu_work: 10.0,
            output_bytes: 0.0,
            inputs: vec![],
        }
    }

    #[test]
    fn exact_mode_passes_through() {
        let e = DemandEstimator::new(EstimationMode::Exact);
        let d = e.estimate(&spec(), JobId(0), None, 0);
        assert_eq!(d.get(Resource::Cpu), 2.0);
    }

    #[test]
    fn cold_phase_overestimates() {
        let e = DemandEstimator::new(EstimationMode::Learned {
            overestimate: 1.5,
            warmup: 3,
        });
        let d = e.estimate(&spec(), JobId(0), None, 0);
        assert_eq!(d.get(Resource::Cpu), 3.0);
    }

    #[test]
    fn warm_phase_is_exact() {
        let e = DemandEstimator::new(EstimationMode::Learned {
            overestimate: 1.5,
            warmup: 3,
        });
        let d = e.estimate(&spec(), JobId(0), None, 3);
        assert_eq!(d.get(Resource::Cpu), 2.0);
    }

    #[test]
    fn known_family_is_exact_even_cold() {
        let mut e = DemandEstimator::new(EstimationMode::Learned {
            overestimate: 2.0,
            warmup: 100,
        });
        e.known_families.insert("daily-report".into());
        let d = e.estimate(&spec(), JobId(0), Some("daily-report"), 0);
        assert_eq!(d.get(Resource::Cpu), 2.0);
        let d2 = e.estimate(&spec(), JobId(0), Some("other"), 0);
        assert_eq!(d2.get(Resource::Cpu), 4.0);
    }

    #[test]
    #[should_panic(expected = "overestimate")]
    fn rejects_underestimation_factor() {
        DemandEstimator::new(EstimationMode::Learned {
            overestimate: 0.5,
            warmup: 1,
        });
    }
}

#[cfg(test)]
mod noisy_tests {
    use super::*;
    use tetris_resources::Resource;
    use tetris_workload::TaskUid;

    fn spec_with(uid: usize) -> TaskSpec {
        TaskSpec {
            uid: TaskUid(uid),
            job: JobId(0),
            stage: 0,
            index: 0,
            demand: ResourceVec::zero()
                .with(Resource::Cpu, 2.0)
                .with(Resource::Mem, 4e9)
                .with(Resource::DiskRead, 50e6),
            cpu_work: 10.0,
            output_bytes: 0.0,
            inputs: vec![],
        }
    }

    #[test]
    fn zero_sigma_is_exact() {
        let e = DemandEstimator::new(EstimationMode::Noisy { sigma: 0.0 });
        assert_eq!(
            e.estimate(&spec_with(1), JobId(0), None, 0),
            spec_with(1).demand
        );
    }

    #[test]
    fn noise_is_deterministic_per_task() {
        let e = DemandEstimator::new(EstimationMode::Noisy { sigma: 0.5 });
        let a = e.estimate(&spec_with(1), JobId(0), None, 0);
        let b = e.estimate(&spec_with(1), JobId(0), None, 5);
        assert_eq!(a, b);
        let c = e.estimate(&spec_with(2), JobId(0), None, 0);
        assert_ne!(a, c);
    }

    #[test]
    fn memory_is_never_misestimated() {
        let e = DemandEstimator::new(EstimationMode::Noisy { sigma: 1.0 });
        let d = e.estimate(&spec_with(3), JobId(0), None, 0);
        assert_eq!(d.get(Resource::Mem), 4e9);
        assert!(d.get(Resource::Cpu) > 0.0);
        assert!(d.get(Resource::DiskRead) > 0.0);
    }

    #[test]
    fn noise_magnitude_tracks_sigma() {
        // Over many tasks, the spread of ln(est/true) ≈ sigma.
        let sigma = 0.5;
        let e = DemandEstimator::new(EstimationMode::Noisy { sigma });
        let ratios: Vec<f64> = (0..2000)
            .map(|i| {
                let s = spec_with(i);
                (e.estimate(&s, JobId(0), None, 0).get(Resource::Cpu) / 2.0).ln()
            })
            .collect();
        let std = tetris_workload::stats::std_dev(&ratios);
        assert!((std - sigma).abs() < 0.1, "measured σ = {std}");
        let mean = tetris_workload::stats::mean(&ratios);
        assert!(mean.abs() < 0.1, "ln-space mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "invalid sigma")]
    fn rejects_bad_sigma() {
        DemandEstimator::new(EstimationMode::Noisy { sigma: f64::NAN });
    }
}
