//! Multi-resource shortest-remaining-time-first scoring (paper §3.3).
//!
//! The score of a job is "the total resource consumption of its remaining
//! tasks": for each remaining task, the sum of its capacity-normalized
//! demands times its estimated duration, summed over tasks. Jobs with
//! **lower** scores are served first — they need the least work to finish,
//! so completing them improves average JCT the most at the least
//! opportunity cost.
//!
//! Because tasks of a phase are statistically similar (paper §4.1 measures
//! in-phase demand CoV of ~0.2 or less), the per-job score is computed from
//! one representative task per stage times the stage's remaining count —
//! this is also what keeps the scheduler's per-event cost independent of
//! job size.

use tetris_resources::ResourceVec;
use tetris_sim::{ClusterView, StageProgress};
use tetris_workload::JobId;

/// Per-task resource-time cost: Σ_r (demand_r / reference_r) × duration.
pub fn task_cost(demand: &ResourceVec, reference_capacity: &ResourceVec, duration: f64) -> f64 {
    demand.normalized_by(reference_capacity).sum() * duration
}

/// Remaining-work score of a job (lower = closer to completion).
///
/// `reference_capacity` is typically the average machine capacity; only
/// relative magnitudes matter.
pub fn job_remaining_work(
    view: &ClusterView<'_>,
    job: JobId,
    reference_capacity: &ResourceVec,
) -> f64 {
    let mut total = 0.0;
    for (si, sp) in view.stage_progress(job).enumerate() {
        total += stage_remaining_work(view, job, si, &sp, reference_capacity);
    }
    total
}

/// As [`job_remaining_work`] but reusing an already-fetched progress vector
/// (hot paths fetch it once per job per scheduling pass).
pub fn job_remaining_work_with(
    view: &ClusterView<'_>,
    job: JobId,
    reference_capacity: &ResourceVec,
    stages: &[StageProgress],
) -> f64 {
    let mut total = 0.0;
    for (si, sp) in stages.iter().enumerate() {
        total += stage_remaining_work(view, job, si, sp, reference_capacity);
    }
    total
}

/// Remaining work of one stage, from one representative task (first
/// pending, or the stage's first task while locked) — O(1) instead of
/// walking the stage.
fn stage_remaining_work(
    view: &ClusterView<'_>,
    job: JobId,
    si: usize,
    sp: &StageProgress,
    reference_capacity: &ResourceVec,
) -> f64 {
    let unscheduled = sp.total - sp.finished - sp.running;
    if unscheduled == 0 {
        return 0.0;
    }
    match view.stage_representative(job, si) {
        Some(t) => {
            unscheduled as f64 * task_cost(&t.demand, reference_capacity, t.ideal_duration())
        }
        None => 0.0,
    }
}

/// Maintains the running average `ā` (alignment score of placed tasks)
/// that sets the combination weight `ε = m·ā/p̄` (paper §3.3.2): with
/// `m = 1`, neither term dominates the combined score.
///
/// Two departures from a literal reading of "(a + ε·p)":
///
/// * **Sign.** The paper defines lower `p` as better ("scheduling jobs
///   with lower scores first reduces average completion time"), so the
///   remaining-work term must enter negatively for a highest-score
///   selection to implement SRTF.
/// * **Saturation.** Normalizing `p` by the mean (`p/p̄`) makes the
///   penalty unbounded for very large jobs, which starves them forever
///   under continuous arrivals of small jobs — contradicting the paper's
///   own finding that large jobs benefit the *most* from Tetris. We
///   therefore use the job's remaining-work *rank* among active jobs
///   (0 = least remaining work, 1 = most): the penalty is bounded by
///   `m·ā`, so a strongly-aligned task of a long job can still win, while
///   the SRTF ordering among comparable alignments is exactly preserved.
#[derive(Debug, Clone)]
pub struct CombinedScorer {
    /// The multiplier `m` (paper's sensitivity analysis: `m ≈ 1` is right;
    /// `m = 0` disables SRTF, large `m` disables packing).
    pub multiplier: f64,
    avg_alignment: RunningAvg,
}

impl CombinedScorer {
    /// New scorer with multiplier `m`.
    pub fn new(multiplier: f64) -> Self {
        assert!(multiplier >= 0.0 && multiplier.is_finite());
        CombinedScorer {
            multiplier,
            avg_alignment: RunningAvg::default(),
        }
    }

    /// Record the alignment score of a task that was actually placed,
    /// updating `ā`.
    pub fn observe_alignment(&mut self, a: f64) {
        self.avg_alignment.push(a);
    }

    /// Persistent ā state for checkpointing (the scheduler's
    /// `export_state` contract): `(mean, n)`, or `None` before any
    /// placement has been observed.
    pub(crate) fn export_avg(&self) -> Option<(f64, u64)> {
        (self.avg_alignment.n > 0).then_some((self.avg_alignment.mean, self.avg_alignment.n))
    }

    /// Restore ā captured by [`export_avg`](CombinedScorer::export_avg).
    pub(crate) fn import_avg(&mut self, mean: f64, n: u64) {
        self.avg_alignment = RunningAvg { mean, n };
    }

    /// Combine an alignment score with the owning job's remaining-work
    /// rank (`0` = shortest remaining work among active jobs, `1` =
    /// longest).
    pub fn combined(&self, alignment: f64, p_rank: f64) -> f64 {
        if self.multiplier == 0.0 {
            return alignment;
        }
        debug_assert!((0.0..=1.0).contains(&p_rank));
        let a_bar = self.avg_alignment.mean_or(alignment.abs().max(1e-9));
        alignment - self.multiplier * a_bar * p_rank
    }
}

/// Rank each value in `[0, 1]` by ascending order (ties share the lower
/// rank; a single element ranks 0).
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx = Vec::new();
    let mut out = Vec::new();
    ranks_into(values, &mut idx, &mut out);
    out
}

/// As [`ranks`], writing into caller-owned buffers (`idx` is sort
/// scratch) so hot paths rank without allocating per call.
pub fn ranks_into(values: &[f64], idx: &mut Vec<usize>, out: &mut Vec<f64>) {
    let n = values.len();
    out.clear();
    out.resize(n, 0.0);
    if n <= 1 {
        return;
    }
    idx.clear();
    idx.extend(0..n);
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN rank input"));
    let denom = (n - 1) as f64;
    let mut i = 0;
    while i < n {
        // Tie group shares the first position's rank.
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        for k in i..=j {
            out[idx[k]] = i as f64 / denom;
        }
        i = j + 1;
    }
}

/// Numerically stable running average.
#[derive(Debug, Clone, Copy, Default)]
struct RunningAvg {
    mean: f64,
    n: u64,
}

impl RunningAvg {
    fn push(&mut self, x: f64) {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
    }

    fn mean_or(&self, fallback: f64) -> f64 {
        if self.n == 0 {
            fallback
        } else {
            self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::Resource;

    fn refcap() -> ResourceVec {
        ResourceVec::zero()
            .with(Resource::Cpu, 16.0)
            .with(Resource::Mem, 32e9)
    }

    #[test]
    fn task_cost_scales_with_demand_and_duration() {
        let c = refcap();
        let d = ResourceVec::zero()
            .with(Resource::Cpu, 4.0)
            .with(Resource::Mem, 8e9);
        // (0.25 + 0.25) × 10 = 5.
        assert!((task_cost(&d, &c, 10.0) - 5.0).abs() < 1e-12);
        assert!(task_cost(&d, &c, 20.0) > task_cost(&d, &c, 10.0));
    }

    #[test]
    fn combined_prefers_less_remaining_work_at_equal_alignment() {
        let mut s = CombinedScorer::new(1.0);
        s.observe_alignment(0.5);
        let short_job = s.combined(0.5, 0.1);
        let long_job = s.combined(0.5, 0.9);
        assert!(short_job > long_job);
    }

    #[test]
    fn combined_prefers_alignment_at_equal_work() {
        let mut s = CombinedScorer::new(1.0);
        s.observe_alignment(0.5);
        assert!(s.combined(0.9, 0.5) > s.combined(0.2, 0.5));
    }

    #[test]
    fn multiplier_zero_is_pure_packing() {
        let s = CombinedScorer::new(0.0);
        assert_eq!(s.combined(0.7, 1.0), 0.7);
    }

    #[test]
    fn penalty_is_bounded_by_m_times_a_bar() {
        let mut s = CombinedScorer::new(2.0);
        s.observe_alignment(0.4);
        s.observe_alignment(0.6); // ā = 0.5
        let v = s.combined(1.0, 1.0);
        assert!((v - (1.0 - 2.0 * 0.5)).abs() < 1e-12);
        // Even the longest job's penalty never exceeds m·ā.
        assert!(s.combined(1.0, 1.0) >= 1.0 - 2.0 * 0.5 - 1e-12);
    }

    #[test]
    fn ranks_order_and_ties() {
        assert_eq!(ranks(&[]), Vec::<f64>::new());
        assert_eq!(ranks(&[5.0]), vec![0.0]);
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![1.0, 0.0, 0.5]);
        let r = ranks(&[1.0, 1.0, 2.0]);
        assert_eq!(r[0], r[1]);
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn running_avg_converges() {
        let mut r = RunningAvg::default();
        for i in 1..=100 {
            r.push(i as f64);
        }
        assert!((r.mean_or(0.0) - 50.5).abs() < 1e-9);
        assert_eq!(RunningAvg::default().mean_or(7.0), 7.0);
    }

    #[test]
    #[should_panic]
    fn negative_multiplier_rejected() {
        CombinedScorer::new(-1.0);
    }
}
