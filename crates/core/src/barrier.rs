//! The barrier knob (paper §3.5, "DAG Awareness").
//!
//! "Given a barrier knob value b ∈ [0,1), whenever resources are available
//! Tetris preferentially offers them to tasks that remain after b fraction
//! of tasks in the stage preceding a barrier have finished." Delay in the
//! last few tasks before a barrier directly delays the job, while
//! prioritizing them takes little from everyone else. The end of a job
//! counts as a barrier too.

use tetris_sim::StageProgress;

/// True if the stage's stragglers should be promoted: it feeds a barrier,
/// at least `b` of it has finished, and it still has pending tasks.
pub fn stage_promoted(stage: &StageProgress, barrier_knob: f64) -> bool {
    assert!(
        (0.0..=1.0).contains(&barrier_knob),
        "barrier knob must be in [0,1]"
    );
    if barrier_knob >= 1.0 {
        // b = 1: promotion disabled.
        return false;
    }
    if !stage.feeds_barrier || stage.pending == 0 || stage.total == 0 {
        return false;
    }
    let finished_frac = stage.finished as f64 / stage.total as f64;
    finished_frac >= barrier_knob
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(total: usize, finished: usize, pending: usize, feeds: bool) -> StageProgress {
        StageProgress {
            total,
            finished,
            running: total - finished - pending,
            pending,
            feeds_barrier: feeds,
            unlocked: true,
        }
    }

    #[test]
    fn promotes_stragglers_past_threshold() {
        assert!(stage_promoted(&stage(10, 9, 1, true), 0.9));
        assert!(!stage_promoted(&stage(10, 10, 0, true), 0.9)); // no pending
    }

    #[test]
    fn below_threshold_not_promoted() {
        assert!(!stage_promoted(&stage(10, 5, 5, true), 0.9));
    }

    #[test]
    fn non_barrier_stage_never_promoted() {
        assert!(!stage_promoted(&stage(10, 9, 1, false), 0.9));
    }

    #[test]
    fn knob_one_disables_promotion() {
        assert!(!stage_promoted(&stage(10, 9, 1, true), 1.0));
    }

    #[test]
    fn knob_zero_promotes_everything_with_a_barrier() {
        assert!(stage_promoted(&stage(10, 0, 10, true), 0.0));
    }

    #[test]
    #[should_panic(expected = "barrier knob")]
    fn rejects_out_of_range() {
        stage_promoted(&stage(1, 0, 1, true), 1.5);
    }
}
