//! The Tetris scheduler (paper §3): multi-resource packing via alignment
//! scores, multi-resource SRTF, the fairness knob and the barrier knob,
//! combined into one `SchedulerPolicy`.

use tetris_resources::{Resource, ResourceVec};
use tetris_sim::{
    Assignment, ClusterView, DecisionScores, MachineId, PlacementProvenance, RejectedCandidate,
    SchedulerEvent, SchedulerPolicy, StageProgress,
};
use tetris_workload::{JobId, TaskUid};

use crate::align::AlignmentKind;
use crate::barrier::stage_promoted;
use crate::estimate::{DemandEstimator, EstimationMode};
use crate::fairness::{eligible_jobs_in_place, job_share, FairnessMeasure};
use crate::srtf::{job_remaining_work_with, ranks_into, CombinedScorer};

/// How many runner-up candidates a verbose trace records per placement.
const PROVENANCE_TOP_K: usize = 3;

/// Configuration of the Tetris scheduler. Defaults follow the paper's
/// recommended operating point.
#[derive(Debug, Clone)]
pub struct TetrisConfig {
    /// Fairness knob `f ∈ [0,1]` (§3.4). 0 = pure packing efficiency,
    /// →1 = strict fairness. Paper default: 0.25.
    pub fairness_knob: f64,
    /// Barrier knob `b ∈ [0,1]` (§3.5): promote stragglers of a
    /// barrier-feeding stage once `b` of it has finished; 1 disables.
    /// Paper default: 0.9 (good range [0.85, 0.95]).
    pub barrier_knob: f64,
    /// Penalty applied to the alignment score when a placement reads
    /// remote input (§3.2). Paper default: 10 %, insensitive in 8–20 %.
    pub remote_penalty: f64,
    /// SRTF weight multiplier `m` (ε = m·ā/p̄, §3.3.2). 0 disables the
    /// remaining-work term (pure packing). Paper default: 1.
    pub srtf_multiplier: f64,
    /// Alignment heuristic (Table 7). Default: cosine.
    pub alignment: AlignmentKind,
    /// How distance-from-fair-share is measured for the fairness knob.
    pub fairness_measure: FairnessMeasure,
    /// Ablation switch: when false, Tetris only *sees* CPU and memory —
    /// like the shipped baselines — so it over-allocates disk/network.
    /// Used to decompose the gains (§5.3.1: "nearly two-thirds of the
    /// gains are due to avoiding over-allocation").
    pub consider_io_dims: bool,
    /// Demand estimation mode (§4.1).
    pub estimation: EstimationMode,
    /// Starvation prevention by reservation — the paper's §3.5 future-work
    /// item ("a more principled solution that reserves machine resources
    /// for starved tasks"). When a runnable task has been pending longer
    /// than `patience` seconds, Tetris reserves the machine where it is
    /// closest to fitting: nothing else is placed there until the starved
    /// task fits. The default is `None` — the paper's deployed behaviour,
    /// which relies on heartbeat batching alone (§3.5) — so enabling
    /// reservations is an explicit, documented extension.
    pub starvation: Option<StarvationConfig>,
    /// Worker shards for the candidate-scoring scan (DESIGN.md §13).
    /// `1` (the default) scores serially; `> 1` fans large scans out
    /// across the deterministic worker pool *within* a heartbeat. The
    /// merge is earliest-candidate-wins in submission order, so shard
    /// count never changes decisions — only wall-clock.
    ///
    /// Renamed from `shards` (deprecated) when the Omega-style
    /// scheduler-level shard knob arrived: that one partitions *jobs*
    /// across whole scheduler instances (`tetris_sim::ShardedScheduler`,
    /// DESIGN.md §14) and *can* change decisions; this one only fans out
    /// the scoring scan inside a single Tetris pass.
    pub score_shards: usize,
}

/// Parameters of starvation-prevention reservations (§3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarvationConfig {
    /// Pending age (seconds) after which a task counts as starved.
    pub patience: f64,
    /// Maximum machines reserved at once (bounds the capacity set aside).
    pub max_reservations: usize,
}

impl Default for StarvationConfig {
    fn default() -> Self {
        StarvationConfig {
            patience: 120.0,
            max_reservations: 2,
        }
    }
}

impl Default for TetrisConfig {
    fn default() -> Self {
        TetrisConfig {
            fairness_knob: 0.25,
            barrier_knob: 0.9,
            remote_penalty: 0.10,
            srtf_multiplier: 1.0,
            alignment: AlignmentKind::Cosine,
            fairness_measure: FairnessMeasure::DominantShare,
            consider_io_dims: true,
            estimation: EstimationMode::Exact,
            starvation: None,
            score_shards: 1,
        }
    }
}

impl TetrisConfig {
    /// Pure packing: no fairness constraint, no SRTF, no barrier hints.
    /// The "most efficient and most unfair" configuration.
    pub fn packing_only() -> Self {
        TetrisConfig {
            fairness_knob: 0.0,
            srtf_multiplier: 0.0,
            barrier_knob: 1.0,
            ..Self::default()
        }
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.fairness_knob) {
            return Err("fairness_knob must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.barrier_knob) {
            return Err("barrier_knob must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.remote_penalty) {
            return Err("remote_penalty must be in [0,1]".into());
        }
        if !(self.srtf_multiplier >= 0.0) || !self.srtf_multiplier.is_finite() {
            return Err("srtf_multiplier must be finite and ≥ 0".into());
        }
        if let Some(sc) = &self.starvation {
            if !(sc.patience > 0.0) || sc.max_reservations == 0 {
                return Err("invalid starvation config".into());
            }
        }
        if self.score_shards == 0 {
            return Err("score_shards must be ≥ 1".into());
        }
        Ok(())
    }
}

/// One placement candidate: the next pending task of one stage of one
/// eligible job. Tasks of a stage are statistically similar (§4.1), so
/// scoring one representative per stage keeps the per-event cost
/// independent of job size without losing score fidelity.
struct Candidate {
    /// Owning job.
    job: JobId,
    /// Stage index within the job.
    stage: usize,
    promoted: bool,
    /// Remaining-work rank of the owning job (0 = shortest).
    p: f64,
    /// Estimated demand (shared by the stage's tasks).
    demand: ResourceVec,
    /// Range into the scratch preference arena: machines holding replicas
    /// of the head task's stored inputs.
    pref: (usize, usize),
    /// True if the task reads shuffle output (treated as remote-heavy).
    shuffle: bool,
    /// Cursor into the stage's pending slice (stable within one
    /// `schedule()` call — the engine applies assignments afterwards).
    next: usize,
    /// Start of this candidate's per-class row in the scratch norm arena:
    /// `norms_arena[norms_start + class]` = (normalized demand, normalized
    /// demand with NetIn dropped). Filled once per `schedule()` call for
    /// live candidates only.
    norms_start: usize,
    /// Cached "has a head task" flag, maintained as `next` advances.
    alive: bool,
}

impl Candidate {
    /// Head task via the view's zero-copy pending slice.
    fn head(&self, view: &ClusterView<'_>) -> Option<TaskUid> {
        view.stage_pending_slice(self.job, self.stage)
            .get(self.next)
            .copied()
    }

    /// Preference list via the scratch arena.
    fn preferred<'s>(&self, arena: &'s [MachineId]) -> &'s [MachineId] {
        &arena[self.pref.0..self.pref.0 + self.pref.1]
    }
}

/// Buffers reused across `schedule()` calls (cleared, never shrunk): after
/// the first few events the scheduler allocates nothing per event. Every
/// structure is rebuilt from the view each call — reuse changes *where* the
/// data lives, never *what* it contains, so decisions are byte-identical
/// to the allocating pass (pinned by `tests/schedule_equivalence.rs`).
#[derive(Default)]
struct ScheduleScratch {
    /// Active jobs with runnable work.
    jobs: Vec<JobId>,
    /// (job, share) pairs; sorted/truncated in place by the fairness knob.
    shares: Vec<(JobId, f64)>,
    /// Remaining-work score per eligible job.
    p_scores: Vec<f64>,
    /// Sort scratch + output buffer for remaining-work ranks.
    rank_idx: Vec<usize>,
    p_ranks: Vec<f64>,
    /// Per-stage progress of the job currently being expanded.
    progress: Vec<StageProgress>,
    /// One candidate per (eligible job, pending stage).
    cands: Vec<Candidate>,
    /// Arena behind `Candidate::pref`.
    preferred_arena: Vec<MachineId>,
    /// Arena behind `Candidate::norms_start`.
    norms_arena: Vec<(ResourceVec, ResourceVec)>,
    /// Freed-machine hint, sorted + deduped (reproduces the former
    /// `BTreeSet` iteration order).
    hinted: Vec<MachineId>,
    /// Machines considered this call.
    machines: Vec<MachineId>,
    /// Working availability ledger (lazily populated).
    avail: AvailCache,
    /// Indices of candidates that survived the envelope prefilter.
    live: Vec<usize>,
    /// (candidate, machine) pairs proven infeasible by the authoritative
    /// plan this call.
    banned: StampGrid,
    /// Distinct machine capacities and each machine's class index.
    classes: Vec<ResourceVec>,
    class_of: Vec<usize>,
    /// Scored candidates of the current machine-iteration, recorded only
    /// under provenance capture: `(candidate, promoted, score,
    /// alignment)`.
    scored: Vec<(usize, bool, f64, f64)>,
}

/// Cached per-job candidate prototype: everything `schedule()` derives
/// from the job's *own* state (progress, head tasks, demand estimate,
/// preference list). One entry per pending stage.
#[derive(Clone)]
struct ProtoCandidate {
    stage: usize,
    promoted: bool,
    demand: ResourceVec,
    /// `(start, len)` into the owning [`JobCache::prefs`].
    pref: (usize, usize),
    shuffle: bool,
}

/// One job's cached candidates, rebuilt only when an event dirtied the
/// job. Validity is the incremental contract: every mutation of a job's
/// progress or pending queues arrives as a [`SchedulerEvent`] naming the
/// job, and block-replica moves (which alter preference lists globally)
/// arrive as `MachineDown`/`MachineUp`, which flush every entry.
#[derive(Default)]
struct JobCache {
    valid: bool,
    /// SRTF remaining-work score (pre-ranking).
    p_score: f64,
    protos: Vec<ProtoCandidate>,
    /// Preference-list storage behind `protos[..].pref`.
    prefs: Vec<MachineId>,
}

/// Event-maintained incremental state (the tentpole): per-job candidate
/// caches plus a mirror of the engine's freed-machine hints.
#[derive(Default)]
struct IncState {
    /// True once any event has been delivered. Before that the policy may
    /// be driven bare (probes, direct `schedule` calls) and must take the
    /// full recompute path every call — there is never scheduler-relevant
    /// history before the first delivered event, so no staleness either.
    synced: bool,
    /// Invalidate every cache entry on the next call (machine down/up:
    /// re-replication moves blocks, so preference lists are globally
    /// stale).
    flush_all: bool,
    /// Jobs dirtied by events since the last call (may repeat).
    dirty: Vec<JobId>,
    /// Mirror of [`ClusterView::freed_machines`] built from `MachineFreed`
    /// events; cleared on `RoundComplete` exactly when the engine clears
    /// its hints.
    freed: Vec<MachineId>,
    /// Per-job caches, indexed by job id (grown on demand).
    cache: Vec<JobCache>,
    /// Reusable rebuild slot for cache-off calls (unsynced policy or
    /// `Learned` estimation): entries could never be revalidated, so
    /// growing `cache` to the highest job id only to rebuild into slots
    /// marked invalid would be pure allocation overhead — a real cost
    /// when a sharded driver runs many short-lived cold passes.
    cold: JobCache,
}

/// Above this many cells the grid switches to a sparse pair list: at
/// 100k machines × hundreds of candidates a dense stamp array would cost
/// hundreds of megabytes, while plan-infeasibility bans are rare enough
/// that a linear membership scan (guarded by the `any` fast path) wins.
const DENSE_GRID_CELLS_MAX: usize = 1 << 24;

/// Generation-stamped membership grid: O(1) insert/query with no per-call
/// clearing (bumping the generation invalidates every cell). Falls back
/// to a sparse pair list past [`DENSE_GRID_CELLS_MAX`] cells. The dense
/// stamp array is allocated lazily on the first insert — plan-
/// infeasibility bans are rare, so most calls (and at cluster scale,
/// most schedulers) never pay for the grid at all.
#[derive(Default)]
struct StampGrid {
    stamps: Vec<u64>,
    gen: u64,
    stride: usize,
    need: usize,
    any: bool,
    sparse: bool,
    pairs: Vec<(u32, u32)>,
}

impl StampGrid {
    /// Start a fresh (rows × cols) grid with all cells absent. O(1): no
    /// allocation or clearing happens until an insert.
    fn begin(&mut self, rows: usize, cols: usize) {
        self.sparse = rows.saturating_mul(cols) > DENSE_GRID_CELLS_MAX;
        if self.sparse {
            self.pairs.clear();
        } else {
            self.stride = cols;
            self.need = rows * cols;
            self.gen += 1;
        }
        self.any = false;
    }

    fn insert(&mut self, row: usize, col: usize) {
        if self.sparse {
            self.pairs.push((row as u32, col as u32));
        } else {
            if self.stamps.len() < self.need {
                self.stamps.resize(self.need, 0);
            }
            self.stamps[row * self.stride + col] = self.gen;
        }
        self.any = true;
    }

    fn contains(&self, row: usize, col: usize) -> bool {
        if self.sparse {
            self.pairs.contains(&(row as u32, col as u32))
        } else {
            // Cells past the (lazily grown) stamp array were never
            // inserted this generation.
            self.stamps
                .get(row * self.stride + col)
                .is_some_and(|&s| s == self.gen)
        }
    }
}

/// Lazily populated availability ledger: `view.available` is evaluated
/// once per *touched* machine per `schedule()` call (stamp-invalidated,
/// never cleared), instead of eagerly for the whole cluster. Values and
/// subtraction order are exactly the former dense ledger's — the view's
/// availability is constant within one call — so decisions are
/// byte-identical; only the O(cluster) prefill disappears.
#[derive(Default)]
struct AvailCache {
    vals: Vec<ResourceVec>,
    stamp: Vec<u64>,
    gen: u64,
}

impl AvailCache {
    /// Start a fresh call over `n` machines (all entries invalid).
    fn begin(&mut self, n: usize) {
        if self.vals.len() < n {
            self.vals.resize(n, ResourceVec::zero());
            self.stamp.resize(n, 0);
        }
        self.gen += 1;
    }

    /// Current working availability of `m` (view value minus this call's
    /// committed placements so far).
    fn get(&mut self, view: &ClusterView<'_>, m: MachineId) -> ResourceVec {
        let i = m.index();
        if self.stamp[i] != self.gen {
            self.stamp[i] = self.gen;
            self.vals[i] = view.available(m);
        }
        self.vals[i]
    }

    /// Charge a committed placement against `m`'s working availability.
    fn sub(&mut self, view: &ClusterView<'_>, m: MachineId, d: &ResourceVec) {
        let v = self.get(view, m);
        self.vals[m.index()] = v - *d;
    }
}

/// The Tetris scheduler.
///
/// ```
/// use tetris_core::{TetrisConfig, TetrisScheduler};
/// use tetris_sim::{ClusterConfig, Simulation};
/// use tetris_resources::MachineSpec;
/// use tetris_workload::WorkloadSuiteConfig;
///
/// let outcome = Simulation::build(
///         ClusterConfig::uniform(4, MachineSpec::paper_large()),
///         WorkloadSuiteConfig::small().generate(3),
///     )
///     .scheduler(TetrisScheduler::new(TetrisConfig::default()))
///     .seed(3)
///     .run();
/// assert!(outcome.all_jobs_completed());
/// ```
pub struct TetrisScheduler {
    cfg: TetrisConfig,
    scorer: CombinedScorer,
    estimator: DemandEstimator,
    /// Machines currently reserved for a starved task (§3.5).
    reservations: Vec<(MachineId, TaskUid)>,
    /// Reusable per-call buffers (see [`ScheduleScratch`]).
    scratch: ScheduleScratch,
    /// Event-maintained incremental state (see [`IncState`]).
    inc: IncState,
    /// Rendered once at construction — `name()` is called per round and
    /// per trace event.
    name: String,
    /// Record decision provenance per assignment (verbose tracing only).
    /// Capture is write-only bookkeeping: it never changes decisions.
    capture: bool,
    /// Provenance awaiting collection via `take_provenance`, keyed by the
    /// placed task. Cleared at the start of each `schedule()` call —
    /// anything still here (e.g. for an assignment the engine rejected)
    /// was never going to be collected.
    prov: Vec<(TaskUid, PlacementProvenance)>,
    /// Scoring scans fanned out across the worker pool (score_shards > 1
    /// only).
    shard_batches: u64,
    /// Candidate entries dispatched across those fan-outs.
    shard_items: u64,
}

impl TetrisScheduler {
    /// Build from a config.
    ///
    /// # Panics
    /// If the config is out of range.
    pub fn new(cfg: TetrisConfig) -> Self {
        cfg.validate().expect("invalid TetrisConfig");
        let mut name = format!(
            "tetris(f={},b={},m={},{})",
            cfg.fairness_knob,
            cfg.barrier_knob,
            cfg.srtf_multiplier,
            cfg.alignment.label()
        );
        if !cfg.consider_io_dims {
            name.push_str("[cpu-mem-only]");
        }
        if cfg.score_shards > 1 {
            name.push_str(&format!("[score_shards={}]", cfg.score_shards));
        }
        TetrisScheduler {
            scorer: CombinedScorer::new(cfg.srtf_multiplier),
            estimator: DemandEstimator::new(cfg.estimation),
            reservations: Vec::new(),
            scratch: ScheduleScratch::default(),
            inc: IncState::default(),
            name,
            cfg,
            capture: false,
            prov: Vec::new(),
            shard_batches: 0,
            shard_items: 0,
        }
    }

    /// Drain the shard-utilization counters: scoring scans dispatched to
    /// the worker pool and candidate entries fanned out across them.
    /// Always `(0, 0)` with `score_shards = 1`.
    pub fn take_shard_stats(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.shard_batches),
            std::mem::take(&mut self.shard_items),
        )
    }

    /// Machines currently reserved for starved tasks (diagnostics).
    pub fn reserved_machines(&self) -> Vec<MachineId> {
        self.reservations.iter().map(|&(m, _)| m).collect()
    }

    /// The configuration in use.
    pub fn config(&self) -> &TetrisConfig {
        &self.cfg
    }

    /// Drop every reusable scratch buffer, forcing the next `schedule()`
    /// call to start from cold allocations — the reference behaviour the
    /// equivalence suite compares warm-scratch runs against. Persistent
    /// policy state (estimator, reservations) is untouched.
    pub fn reset_scratch(&mut self) {
        self.scratch = ScheduleScratch::default();
    }
}

/// Project a vector to the dimensions the configuration considers (free
/// function so the hot path can call it while scratch is borrowed).
fn visible(consider_io_dims: bool, v: &ResourceVec) -> ResourceVec {
    if consider_io_dims {
        *v
    } else {
        v.project(&[Resource::Cpu, Resource::Mem])
    }
}

/// A scoring fan-out wider than this stays serial: below it, thread
/// launch costs more than the scan itself.
const SHARD_MIN_CANDIDATES: usize = 4096;

/// Score one contiguous chunk of live candidates against machine `m`,
/// returning the chunk-local best as `(candidate index, promoted,
/// combined score, alignment)`. The comparison is strictly-greater on
/// `(promoted, score)`, so within a chunk the *earliest* maximal
/// candidate wins — and merging chunk results in submission order
/// preserves exactly the serial scan's earliest-wins winner, which is
/// what makes sharding decision-neutral (DESIGN.md §13).
#[allow(clippy::too_many_arguments)]
fn scan_chunk(
    chunk: &[usize],
    cands: &[Candidate],
    norms_arena: &[(ResourceVec, ResourceVec)],
    preferred_arena: &[MachineId],
    avail_norm: &ResourceVec,
    banned: &StampGrid,
    ban_check: bool,
    m: MachineId,
    cls: usize,
    scorer: &CombinedScorer,
    cfg: &TetrisConfig,
) -> Option<(usize, bool, f64, f64)> {
    let mut best: Option<(usize, bool, f64, f64)> = None;
    for &ci in chunk {
        let c = &cands[ci];
        if !c.alive || (ban_check && banned.contains(ci, m.index())) {
            continue;
        }
        let (norm, norm_local) = &norms_arena[c.norms_start + cls];
        let local = !c.shuffle && c.preferred(preferred_arena).binary_search(&m).is_ok();
        let demand_norm = if local { norm_local } else { norm };
        // Feasibility in normalized space (capacity-relative); the demand
        // was clamped to the class capacity, so a deliberate over-estimate
        // (§4.1) cannot make the task unplaceable everywhere.
        if !demand_norm.fits_within(avail_norm) {
            continue;
        }
        let mut a = cfg.alignment.score_normalized(demand_norm, avail_norm);
        let is_remote = c.shuffle || (c.pref.1 != 0 && !local);
        if is_remote {
            a *= 1.0 - cfg.remote_penalty;
        }
        let score = if c.promoted {
            // Promoted stragglers rank above everyone and are ordered
            // among themselves by alignment (§3.5).
            a
        } else {
            scorer.combined(a, c.p)
        };
        let better = match best {
            None => true,
            Some((_, bp, bs, _)) => (c.promoted, score) > (bp, bs),
        };
        if better {
            best = Some((ci, c.promoted, score, a));
        }
    }
    best
}

/// Persistent scheduler state carried in engine checkpoints (the
/// `export_state`/`import_state` contract): the §3.5 reservations and the
/// estimator's learned family sets — everything that outlives a
/// `schedule()` call yet cannot be re-derived from the cluster view.
/// Caches (`inc`, scratch, provenance) are deliberately excluded: a
/// restored policy rebuilds them from events and views.
#[derive(serde::Serialize, serde::Deserialize)]
struct PolicyState {
    reservations: Vec<(MachineId, TaskUid)>,
    /// `(known, active)` recurring-family sets of a Learned estimator.
    #[serde(default)]
    families: Option<(Vec<String>, Vec<String>)>,
    /// `(mean, n)` of the scorer's running average alignment ā (the ε =
    /// m·ā/p̄ weighting, §3.3.2). JSON floats roundtrip exactly
    /// (`float_roundtrip`), so a restored ā is bit-identical.
    #[serde(default)]
    avg_alignment: Option<(f64, u64)>,
}

impl SchedulerPolicy for TetrisScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn export_state(&self) -> Option<String> {
        let families = self.estimator.export_families();
        let avg_alignment = self.scorer.export_avg();
        if self.reservations.is_empty() && families.is_none() && avg_alignment.is_none() {
            return None;
        }
        let s = PolicyState {
            reservations: self.reservations.clone(),
            families,
            avg_alignment,
        };
        Some(serde_json::to_string(&s).expect("policy state serializes"))
    }

    fn import_state(&mut self, state: &str) {
        // The blob arrives through a CRC-framed, fingerprint-checked
        // journal: a parse failure is a bug, not an input error.
        let s: PolicyState = serde_json::from_str(state).expect("valid policy state blob");
        self.reservations = s.reservations;
        if let Some((known, active)) = s.families {
            self.estimator.import_families(known, active);
        }
        if let Some((mean, n)) = s.avg_alignment {
            self.scorer.import_avg(mean, n);
        }
    }

    fn uses_tracker(&self) -> bool {
        // Tetris subtracts tracker-reported external usage (§4.3).
        true
    }

    fn set_capture_provenance(&mut self, on: bool) {
        self.capture = on;
        self.prov.clear();
    }

    fn take_provenance(&mut self, task: TaskUid) -> Option<PlacementProvenance> {
        let i = self.prov.iter().position(|(t, _)| *t == task)?;
        Some(self.prov.swap_remove(i).1)
    }

    fn on_event(&mut self, _view: &ClusterView<'_>, event: &SchedulerEvent) {
        self.inc.synced = true;
        match *event {
            // Anything that moves a job's progress or pending queues
            // dirties exactly that job's cached candidates.
            SchedulerEvent::JobArrived { job }
            | SchedulerEvent::TaskPlaced { job, .. }
            | SchedulerEvent::TaskFinished { job, .. }
            | SchedulerEvent::TaskPreempted { job, .. }
            | SchedulerEvent::TaskAbandoned { job, .. }
            | SchedulerEvent::TaskRunnable { job, .. } => self.inc.dirty.push(job),
            SchedulerEvent::MachineFreed { machine } => self.inc.freed.push(machine),
            // Crash/recovery re-replicates blocks: every cached preference
            // list may be stale, so flush the lot (rare events).
            SchedulerEvent::MachineDown { .. } | SchedulerEvent::MachineUp { .. } => {
                self.inc.flush_all = true;
            }
            // Tracker state and external loads are read fresh from the
            // view on every call (suspect filter, availability ledger) —
            // nothing cached depends on them.
            SchedulerEvent::MachineSuspected { .. }
            | SchedulerEvent::MachineCleared { .. }
            | SchedulerEvent::TrackerReport
            | SchedulerEvent::ExternalLoadChanged { .. } => {}
            // The engine clears its freed hints when the round ends; the
            // mirror follows.
            SchedulerEvent::RoundComplete => self.inc.freed.clear(),
        }
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let TetrisScheduler {
            cfg,
            scorer,
            estimator,
            reservations,
            scratch,
            inc,
            capture,
            prov,
            shard_batches,
            shard_items,
            ..
        } = self;
        let capture = *capture;
        // Uncollected provenance (assignments the engine rejected) will
        // never be queried once a new call begins.
        prov.clear();
        // Cache reuse needs two things: event delivery (`synced` — before
        // the first event there is no history to be stale about, but also
        // no way to know what changed) and the `Exact` estimator (the
        // `Learned` mode keys off cross-job family state the per-job
        // events don't cover). Otherwise every entry is rebuilt each call,
        // which replays the exact pre-event recompute path.
        let use_cache = inc.synced && matches!(cfg.estimation, EstimationMode::Exact);
        // Snapshot the incremental-state inputs for provenance before they
        // are consumed below.
        let prov_flushed = !use_cache || inc.flush_all;
        let prov_dirty = inc.dirty.len() as u32;
        if !use_cache || inc.flush_all {
            for c in inc.cache.iter_mut() {
                c.valid = false;
            }
            inc.flush_all = false;
        } else {
            for &j in &inc.dirty {
                if let Some(c) = inc.cache.get_mut(j.index()) {
                    c.valid = false;
                }
            }
        }
        inc.dirty.clear();
        estimator.update(view);
        // Reservations for tasks that got placed/finished meanwhile lapse.
        reservations.retain(|&(_, t)| view.is_runnable(t));
        // J = active jobs with runnable work: a job with nothing pending
        // cannot use an offer, so it neither receives one nor dilutes the
        // ⌈(1−f)|J|⌉ cutoff (§3.4).
        let ScheduleScratch {
            jobs,
            shares,
            p_scores,
            rank_idx,
            p_ranks,
            progress,
            cands,
            preferred_arena,
            norms_arena,
            hinted,
            machines,
            avail,
            live,
            banned,
            classes,
            class_of,
            scored,
        } = scratch;
        jobs.clear();
        jobs.extend(view.active_jobs().filter(|&j| view.job_has_pending(j)));
        if jobs.is_empty() {
            return Vec::new();
        }

        let total_capacity = view.total_capacity();
        let n_machines = view.num_machines();
        let reference = total_capacity / n_machines as f64;

        // Fairness knob: restrict to the jobs furthest from fair share.
        let total_slots: usize =
            jobs.iter().map(|&j| view.job_running(j)).sum::<usize>() + view.num_pending();
        shares.clear();
        shares.extend(jobs.iter().map(|&j| {
            (
                j,
                job_share(
                    cfg.fairness_measure,
                    &view.job_allocated(j),
                    view.job_running(j),
                    &total_capacity,
                    total_slots.max(1),
                ),
            )
        }));
        eligible_jobs_in_place(shares, cfg.fairness_knob);

        // One pass per eligible job: rebuild the job's candidate cache if
        // an event dirtied it (or caching is off), then assemble global
        // candidates from the cache. The rebuild is exactly the former
        // recompute — progress, SRTF score, per-stage demand estimate and
        // preference list — so assembly from a warm cache is byte-for-byte
        // the recomputed result (pinned by `tests/schedule_equivalence.rs`
        // and the incremental proptest).
        p_scores.clear();
        cands.clear();
        preferred_arena.clear();
        let mut cache_hits = 0u32;
        let mut cache_rebuilds = 0u32;
        for &(j, _) in shares.iter() {
            let ji = j.index();
            let cached = if use_cache {
                if inc.cache.len() <= ji {
                    inc.cache.resize_with(ji + 1, JobCache::default);
                }
                &mut inc.cache[ji]
            } else {
                // Rebuild into the shared scratch slot: with caching off
                // the entry is consumed immediately below and never
                // revalidated, so a table slot would buy nothing.
                inc.cold.valid = false;
                &mut inc.cold
            };
            if !cached.valid {
                cache_rebuilds += 1;
                let family = view.job_family(j);
                view.stage_progress_into(j, progress);
                cached.p_score = job_remaining_work_with(view, j, &reference, progress);
                cached.protos.clear();
                cached.prefs.clear();
                for (stage, pending) in view.job_pending_stages(j) {
                    let head = pending[0];
                    let spec = view.task(head);
                    let demand = estimator.estimate(spec, j, family, progress[stage].finished);
                    let pref = view.preferred_machines_append(head, &mut cached.prefs);
                    cached.protos.push(ProtoCandidate {
                        stage,
                        promoted: stage_promoted(&progress[stage], cfg.barrier_knob),
                        demand,
                        pref,
                        shuffle: spec.reads_shuffle(),
                    });
                }
                cached.valid = use_cache;
            } else {
                cache_hits += 1;
            }
            p_scores.push(cached.p_score);
            let p_slot = p_scores.len() - 1; // rank filled in below
            let base = preferred_arena.len();
            preferred_arena.extend_from_slice(&cached.prefs);
            for proto in &cached.protos {
                cands.push(Candidate {
                    job: j,
                    stage: proto.stage,
                    promoted: proto.promoted,
                    p: p_slot as f64, // placeholder: index into p_ranks
                    demand: proto.demand,
                    pref: (base + proto.pref.0, proto.pref.1),
                    shuffle: proto.shuffle,
                    next: 0,
                    norms_start: usize::MAX, // filled for live candidates
                    alive: true,
                });
            }
        }
        if cands.is_empty() {
            return Vec::new();
        }
        // Resolve remaining-work ranks (0 = least remaining work).
        ranks_into(p_scores, rank_idx, p_ranks);
        for c in cands.iter_mut() {
            c.p = p_ranks[c.p as usize];
        }

        // Focus on machines whose availability changed; fall back to the
        // whole cluster when no hint exists (arrivals, tracker ticks).
        // Sort + dedup reproduces the former `BTreeSet` iteration order.
        // Synced policies read their event-built mirror (identical to the
        // view's hints when engine-driven, but also correct when a harness
        // delivers events without threading hints through the state);
        // unsynced ones read the view, the exact pre-event path.
        hinted.clear();
        if inc.synced {
            hinted.extend_from_slice(&inc.freed);
        } else {
            hinted.extend_from_slice(view.freed_machines());
        }
        hinted.sort_unstable();
        hinted.dedup();
        // A cold pass (no freed-machine hint: arrivals, tracker ticks,
        // cache flushes) must consider the whole cluster; that is the
        // pass MachineQuery makes sublinear. Warm passes keep focusing on
        // the hinted machines as before.
        let query = view.query();
        let cold = hinted.is_empty();
        machines.clear();
        if !cold {
            machines.extend_from_slice(hinted);
            // Graceful degradation under faults: down machines host
            // nothing, and suspect machines are skipped outright —
            // alignment scores are computed *from* tracker reports, so a
            // machine whose reports are implausible or stale gives Tetris
            // nothing to score against (slot baselines, which never read
            // usage, merely deprioritize). This is an exact no-op without
            // fault injection — `is_down`/`is_suspect` are always false
            // then and `retain` keeps everything — so decisions stay
            // byte-identical to the pre-fault scheduler.
            machines.retain(|&m| !view.is_down(m) && !view.is_suspect(m));
        }

        // Working availability ledger, populated lazily (remote
        // feasibility can touch machines outside the hint set).
        avail.begin(n_machines);
        banned.begin(cands.len(), n_machines); // (cand, machine)
        let mut out = Vec::new();

        // Envelope prefilter: a candidate whose (capacity-clamped) demand
        // exceeds the per-dimension *maximum* availability over all
        // considered machines fits nowhere — skip it for the whole call.
        // Valid throughout: availability only shrinks as we place. Cold
        // passes take the envelopes from the query (the indexed backend
        // answers without scanning the cluster); warm passes fold over
        // the hinted worklist exactly as before.
        let mut cap_env = ResourceVec::zero();
        let mut avail_env = ResourceVec::zero();
        if cold {
            cap_env = query.capacity_envelope();
            avail_env = query.availability_envelope();
        } else {
            for &m in machines.iter() {
                cap_env = cap_env.max(&view.capacity(m));
                avail_env = avail_env.max(&avail.get(view, m).clamp_non_negative());
            }
        }
        live.clear();
        live.extend((0..cands.len()).filter(|&ci| {
            let d = visible(cfg.consider_io_dims, &cands[ci].demand.min(&cap_env));
            // Local placements shed NetIn, so exclude it from pruning.
            let d = d.with(
                Resource::NetIn,
                d.get(Resource::NetIn).min(avail_env.get(Resource::NetIn)),
            );
            d.fits_within(&avail_env)
        }));
        // Cheapest-candidate floor: no live candidate demands less than
        // this much CPU/memory, so a machine below the floor hosts nothing
        // and is skipped without scanning (saturated-cluster fast path).
        let (mut min_cpu, mut min_mem) = (f64::INFINITY, f64::INFINITY);
        for &ci in live.iter() {
            let d = visible(cfg.consider_io_dims, &cands[ci].demand.min(&cap_env));
            min_cpu = min_cpu.min(d.get(Resource::Cpu));
            min_mem = min_mem.min(d.get(Resource::Mem));
        }
        if cold {
            // Cold worklist: the considered machines whose availability
            // *upper bound* meets the cheapest-candidate floor, ascending
            // by id — every machine this skips would have hit the floor
            // break below on its first iteration with no side effects, so
            // pruning is decision-neutral. Reserved machines are re-added
            // (their branch runs before the floor break), keeping the
            // worklist sorted so processing order matches the old full
            // ascending scan.
            query.floor_candidates_into(min_cpu, min_mem, machines);
            for &(rm, _) in reservations.iter() {
                if !view.is_down(rm) && !view.is_suspect(rm) {
                    if let Err(pos) = machines.binary_search(&rm) {
                        machines.insert(pos, rm);
                    }
                }
            }
        }

        // Capacity classes (clusters have very few distinct machine
        // specs): precompute each live candidate's normalized demand per
        // class so the inner scan does no per-pair normalization. Classes
        // cover the *worklist* only — class identity is just a shared
        // capacity vector, so worklist-local class numbering yields the
        // same normalized demands as whole-cluster numbering did.
        classes.clear();
        if class_of.len() < n_machines {
            // Grow-once: stale entries for machines outside this call's
            // worklist are never read, and an O(cluster) clear here would
            // defeat the sublinear cold pass.
            class_of.resize(n_machines, 0);
        }
        for &m in machines.iter() {
            let cap = view.capacity(m);
            class_of[m.index()] = match classes.iter().position(|c| *c == cap) {
                Some(i) => i,
                None => {
                    classes.push(cap);
                    classes.len() - 1
                }
            };
        }
        norms_arena.clear();
        for &ci in live.iter() {
            let c = &mut cands[ci];
            c.norms_start = norms_arena.len();
            norms_arena.extend(classes.iter().map(|cap| {
                let clamped = c.demand.min(cap);
                let norm = if cfg.consider_io_dims {
                    clamped.normalized_by(cap)
                } else {
                    clamped
                        .project(&[Resource::Cpu, Resource::Mem])
                        .normalized_by(cap)
                };
                let mut norm_local = norm;
                norm_local.set(Resource::NetIn, 0.0);
                (norm, norm_local)
            }));
        }

        // Placement constraints (§16 spec API): pre-ban every (candidate,
        // machine) pair the job's constraints or machine taints disallow,
        // reusing the `banned` stamp grid so the scoring scans need no
        // extra per-pair checks. Unconstrained runs insert nothing
        // (`banned.any` stays false), keeping all-batch decisions
        // byte-identical to the pre-constraint scheduler.
        let taints = view.taints_active();
        if taints
            || live
                .iter()
                .any(|&ci| view.job_constraints(cands[ci].job).has_any())
        {
            for &ci in live.iter() {
                let job = cands[ci].job;
                if !taints && !view.job_constraints(job).has_any() {
                    continue;
                }
                for &m in machines.iter() {
                    if !view.constraints_allow(job, m) {
                        banned.insert(ci, m.index());
                    }
                }
            }
        }

        // Decision bookkeeping: how many machines this pass *considered*
        // (the pre-index cold-pass scope), and how many the index pruned
        // away before scoring. Cold passes report the full considered
        // set so traces stay comparable with the pre-index scheduler.
        let considered_machines = if cold {
            query.considered_count() as u32
        } else {
            machines.len() as u32
        };
        let prov_index_considered = machines.len() as u32;
        let prov_index_pruned = if cold {
            query.considered_count().saturating_sub(machines.len()) as u32
        } else {
            0
        };

        // Fill each machine greedily: pick the highest-scoring candidate
        // that fits, charge it, repeat until nothing fits (§3.2 "this
        // process is repeated recursively until the machine cannot
        // accommodate any further tasks").
        for &m in machines.iter() {
            // A machine reserved for a starved task accepts only that task
            // (§3.5 reservation extension).
            if let Some(&(_, starved)) = reservations.iter().find(|&&(rm, _)| rm == m) {
                if view.is_runnable(starved) {
                    let plan = view.plan(starved, m);
                    let local = visible(cfg.consider_io_dims, &plan.local);
                    let feasible = local
                        .fits_within(&visible(cfg.consider_io_dims, &avail.get(view, m)))
                        && (!cfg.consider_io_dims
                            || plan
                                .remote
                                .iter()
                                .all(|(src, dem)| dem.fits_within(&avail.get(view, *src))));
                    if feasible {
                        avail.sub(view, m, &plan.local);
                        for (src, dem) in &plan.remote {
                            avail.sub(view, *src, dem);
                        }
                        // Reservation redemptions are placed by right, not
                        // by score — no DecisionScores to attach.
                        out.push(Assignment::new(starved, m));
                        // Consume the matching candidate head if present so
                        // the task is not double-placed this round.
                        for c in cands.iter_mut() {
                            if c.head(view) == Some(starved) {
                                c.next += 1;
                                c.alive = c.head(view).is_some();
                            }
                        }
                        reservations.retain(|&(rm, _)| rm != m);
                    }
                }
                continue;
            }
            let capacity = view.capacity(m);
            let cls = class_of[m.index()];
            loop {
                {
                    let a = avail.get(view, m);
                    if live.is_empty()
                        || a.get(Resource::Cpu) < min_cpu
                        || a.get(Resource::Mem) < min_mem
                    {
                        break;
                    }
                }
                let machine_avail = visible(cfg.consider_io_dims, &avail.get(view, m));
                // Hoisted per machine-iteration: normalized availability.
                let avail_norm = machine_avail.clamp_non_negative().normalized_by(&capacity);
                // Select the best candidate by (promoted, score).
                let ban_check = banned.any;
                // (candidate, promoted, combined score, alignment term).
                let mut best: Option<(usize, bool, f64, f64)> = None;
                if capture {
                    // Provenance capture needs every score, not just the
                    // winner — keep the serial inline loop.
                    scored.clear();
                    for &ci in live.iter() {
                        let c = &cands[ci];
                        if !c.alive || (ban_check && banned.contains(ci, m.index())) {
                            continue;
                        }
                        let (norm, norm_local) = &norms_arena[c.norms_start + cls];
                        let local =
                            !c.shuffle && c.preferred(preferred_arena).binary_search(&m).is_ok();
                        let demand_norm = if local { norm_local } else { norm };
                        // Feasibility in normalized space (capacity-relative);
                        // the demand was clamped to the class capacity, so a
                        // deliberate over-estimate (§4.1) cannot make the task
                        // unplaceable everywhere.
                        if !demand_norm.fits_within(&avail_norm) {
                            continue;
                        }
                        let mut a = cfg.alignment.score_normalized(demand_norm, &avail_norm);
                        let is_remote = c.shuffle || (c.pref.1 != 0 && !local);
                        if is_remote {
                            a *= 1.0 - cfg.remote_penalty;
                        }
                        let score = if c.promoted {
                            // Promoted stragglers rank above everyone and are
                            // ordered among themselves by alignment (§3.5).
                            a
                        } else {
                            scorer.combined(a, c.p)
                        };
                        scored.push((ci, c.promoted, score, a));
                        let better = match best {
                            None => true,
                            Some((_, bp, bs, _)) => (c.promoted, score) > (bp, bs),
                        };
                        if better {
                            best = Some((ci, c.promoted, score, a));
                        }
                    }
                } else if cfg.score_shards > 1 && live.len() >= SHARD_MIN_CANDIDATES {
                    // Shard the scan across the deterministic worker pool.
                    // Each chunk returns its earliest-wins best under the
                    // same strict `(promoted, score)` comparison as the
                    // serial loop; merging chunk winners in submission
                    // order with that comparison reproduces the serial
                    // earliest-wins choice exactly (DESIGN.md §13).
                    *shard_batches += 1;
                    *shard_items += live.len() as u64;
                    let chunk_len = live.len().div_ceil(cfg.score_shards);
                    let chunks: Vec<&[usize]> = live.chunks(chunk_len).collect();
                    let winners = tetris_sim::pool::pool_map(
                        chunks,
                        cfg.score_shards,
                        |chunk, _| {
                            scan_chunk(
                                chunk,
                                cands,
                                norms_arena,
                                preferred_arena,
                                &avail_norm,
                                banned,
                                ban_check,
                                m,
                                cls,
                                scorer,
                                cfg,
                            )
                        },
                        |_, _| {},
                    );
                    for w in winners.into_iter().flatten() {
                        let better = match best {
                            None => true,
                            Some((_, bp, bs, _)) => (w.1, w.2) > (bp, bs),
                        };
                        if better {
                            best = Some(w);
                        }
                    }
                } else {
                    best = scan_chunk(
                        live,
                        cands,
                        norms_arena,
                        preferred_arena,
                        &avail_norm,
                        banned,
                        ban_check,
                        m,
                        cls,
                        scorer,
                        cfg,
                    );
                }
                let Some((ci, _, combined, alignment)) = best else {
                    break;
                };

                // Authoritative feasibility via the full placement plan
                // (checks disk/net-out at every remote input source).
                let uid = cands[ci].head(view).expect("candidate head");
                let plan = view.plan(uid, m);
                let local = visible(cfg.consider_io_dims, &plan.local);
                let feasible = local
                    .fits_within(&visible(cfg.consider_io_dims, &avail.get(view, m)))
                    && (!cfg.consider_io_dims
                        || plan
                            .remote
                            .iter()
                            .all(|(src, dem)| dem.fits_within(&avail.get(view, *src))));
                if !feasible {
                    banned.insert(ci, m.index());
                    continue;
                }

                // Commit.
                avail.sub(view, m, &plan.local);
                for (src, dem) in &plan.remote {
                    avail.sub(view, *src, dem);
                }
                let a_placed = cfg.alignment.score(
                    &local,
                    &visible(cfg.consider_io_dims, &avail.get(view, m)),
                    &capacity,
                );
                scorer.observe_alignment(a_placed.max(0.0));
                out.push(Assignment::new(uid, m).with_scores(DecisionScores {
                    alignment,
                    srtf: cands[ci].p,
                    combined,
                    considered_machines,
                }));
                if capture {
                    // Runner-up candidates on this machine, best first, so
                    // `explain` can show what the winner beat. Recorded
                    // after the decision: pure bookkeeping, never feeds
                    // back into scoring.
                    scored.sort_unstable_by(|x, y| y.1.cmp(&x.1).then_with(|| y.2.total_cmp(&x.2)));
                    let rejected = scored
                        .iter()
                        .filter(|&&(rci, ..)| rci != ci)
                        .take(PROVENANCE_TOP_K)
                        .filter_map(|&(rci, _, score, a)| {
                            let head = cands[rci].head(view)?;
                            Some(RejectedCandidate {
                                job: cands[rci].job.index(),
                                task: head.index(),
                                alignment: Some(a),
                                srtf: Some(cands[rci].p),
                                score,
                            })
                        })
                        .collect();
                    prov.push((
                        uid,
                        PlacementProvenance {
                            cache_hits,
                            cache_rebuilds,
                            cache_flushed: prov_flushed,
                            dirty_jobs: prov_dirty,
                            candidates: scored.len() as u32,
                            index_pruned: prov_index_pruned,
                            index_considered: prov_index_considered,
                            rejected,
                        },
                    ));
                }
                cands[ci].next += 1;
                cands[ci].alive = cands[ci].head(view).is_some();
                // In-call spread approximation: until the job's *running*
                // tasks span the spread floor, place at most one task per
                // machine per call (the authoritative running-state check
                // lives in `constraints_allow`; this just stops one call
                // from stacking a whole wave on one machine before any of
                // it starts). Conservative — never bans a machine the
                // steady-state predicate would allow forever.
                let cons = view.job_constraints(cands[ci].job);
                if let Some(n) = cons.spread {
                    if view.job_spread(cands[ci].job) < n {
                        banned.insert(ci, m.index());
                    }
                }
            }
        }

        // Starvation detection (§3.5 extension): a head task pending past
        // the patience threshold gets a machine reserved — the one where
        // its demand shortfall is smallest — so churn of small tasks can
        // no longer starve it.
        if let Some(sc) = cfg.starvation {
            for c in cands.iter() {
                if reservations.len() >= sc.max_reservations {
                    break;
                }
                let Some(head) = c.head(view) else { continue };
                if view.task_pending_age(head) < sc.patience {
                    continue;
                }
                if reservations.iter().any(|&(_, t)| t == head) {
                    continue;
                }
                let demand = visible(cfg.consider_io_dims, &c.demand);
                let mut best: Option<(MachineId, f64)> = None;
                for m in query.iter_all() {
                    if reservations.iter().any(|&(rm, _)| rm == m) {
                        continue;
                    }
                    // Never reserve a dead or suspect machine for a
                    // starved task (no-op without fault injection).
                    if view.is_down(m) || view.is_suspect(m) {
                        continue;
                    }
                    let cap = view.capacity(m);
                    if !demand.min(&cap).fits_within(&cap) {
                        continue;
                    }
                    // Shortfall: worst normalized gap between demand and
                    // current availability (0 ⇒ it already fits).
                    let a = visible(cfg.consider_io_dims, &avail.get(view, m));
                    let gap = (demand - a)
                        .clamp_non_negative()
                        .normalized_by(&cap)
                        .max_component();
                    let better = match best {
                        None => true,
                        Some((_, bg)) => gap < bg,
                    };
                    if better {
                        best = Some((m, gap));
                    }
                }
                if let Some((m, _)) = best {
                    reservations.push((m, head));
                }
            }
        }

        // Priority preemption (DESIGN.md §16): when enabled and a
        // higher-priority job placed nothing above, evict strictly
        // lower-priority tasks to make room. No-op (None) with
        // `SimConfig::preemption` off, so batch runs are unchanged.
        if let Some(pre) = tetris_sim::plan_priority_preemption(view, &out) {
            out.push(pre);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::MachineSpec;
    use tetris_sim::{ClusterConfig, Simulation};
    use tetris_workload::WorkloadSuiteConfig;

    #[test]
    fn config_validation() {
        assert!(TetrisConfig::default().validate().is_ok());
        let mut c = TetrisConfig::default();
        c.fairness_knob = 1.5;
        assert!(c.validate().is_err());
        let mut c = TetrisConfig::default();
        c.remote_penalty = -0.1;
        assert!(c.validate().is_err());
        let mut c = TetrisConfig::default();
        c.srtf_multiplier = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid TetrisConfig")]
    fn new_panics_on_bad_config() {
        let mut c = TetrisConfig::default();
        c.barrier_knob = 2.0;
        let _ = TetrisScheduler::new(c);
    }

    #[test]
    fn name_reflects_config() {
        let s = TetrisScheduler::new(TetrisConfig::default());
        assert!(s.name().starts_with("tetris(f=0.25,b=0.9,m=1,cosine"));
        let mut c = TetrisConfig::default();
        c.consider_io_dims = false;
        assert!(TetrisScheduler::new(c).name().contains("cpu-mem-only"));
    }

    #[test]
    fn completes_a_small_suite() {
        let outcome = Simulation::build(
            ClusterConfig::uniform(6, MachineSpec::paper_large()),
            WorkloadSuiteConfig::small().generate(5),
        )
        .scheduler(TetrisScheduler::new(TetrisConfig::default()))
        .seed(5)
        .run();
        assert!(outcome.all_jobs_completed());
        assert!(outcome.stats.placements >= outcome.tasks.len() as u64);
    }

    #[test]
    fn never_overallocates_any_dimension_without_reclamation() {
        // With idle reclamation off, availability is the demand ledger and
        // Tetris's feasibility checks make over-allocation impossible
        // (§3.2).
        let cluster = ClusterConfig::uniform(6, MachineSpec::paper_large());
        let cap = MachineSpec::paper_large().capacity();
        let mut cfg = tetris_sim::SimConfig::default();
        cfg.seed = 8;
        cfg.reclaim_idle = false;
        let outcome = Simulation::build(cluster, WorkloadSuiteConfig::small().generate(8))
            .scheduler(TetrisScheduler::new(TetrisConfig::default()))
            .config(cfg)
            .run();
        assert!(outcome.all_jobs_completed());
        for s in &outcome.samples {
            for ms in s.machines.as_ref().unwrap() {
                for r in Resource::ALL {
                    assert!(
                        ms.allocated.get(r) <= cap.get(r) * (1.0 + 1e-9) + 1e-6,
                        "over-allocated {r}: {}",
                        ms.allocated.get(r)
                    );
                }
            }
        }
    }

    #[test]
    fn reclamation_never_overcommits_memory_and_helps_throughput() {
        // With reclamation on (the paper's §4.1 design), idle CPU/IO peaks
        // are re-offered — but memory is a held resource and must never be
        // over-committed by Tetris.
        let cluster = ClusterConfig::uniform(6, MachineSpec::paper_large());
        let cap = MachineSpec::paper_large().capacity();
        let run = |reclaim| {
            let mut cfg = tetris_sim::SimConfig::default();
            cfg.seed = 8;
            cfg.reclaim_idle = reclaim;
            Simulation::build(
                ClusterConfig::uniform(6, MachineSpec::paper_large()),
                WorkloadSuiteConfig::small().generate(8),
            )
            .scheduler(TetrisScheduler::new(TetrisConfig::default()))
            .config(cfg)
            .run()
        };
        let _ = cluster;
        let with = run(true);
        let without = run(false);
        assert!(with.all_jobs_completed());
        for s in &with.samples {
            for ms in s.machines.as_ref().unwrap() {
                assert!(
                    ms.allocated.get(Resource::Mem) <= cap.get(Resource::Mem) * (1.0 + 1e-9),
                    "memory over-committed: {}",
                    ms.allocated.get(Resource::Mem)
                );
            }
        }
        // Reclamation must not hurt completion; it usually improves it.
        assert!(with.makespan() <= without.makespan() * 1.10);
    }

    #[test]
    fn cpu_mem_only_ablation_overallocates_io() {
        // With IO dims masked, Tetris behaves like the baselines and can
        // over-allocate disk/network on IO-heavy workloads: 12 disk-bound
        // writers (150 MB/s demand each) fit a machine by CPU+memory but
        // demand 9× its 200 MB/s disk.
        use tetris_resources::units::{GB, MB};
        use tetris_workload::gen::{TaskParams, WorkloadBuilder};
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("writers", None, 0.0);
        b.add_stage(j, "w", vec![], 12, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 20.0,
            cpu_frac: 0.1,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 3000.0 * MB, // 150 MB/s over 20 s
            remote_frac: 1.0,
        });
        let mut cfg = TetrisConfig::default();
        cfg.consider_io_dims = false;
        let cluster = ClusterConfig::uniform(2, MachineSpec::paper_large());
        let mut sim_cfg = tetris_sim::SimConfig::default();
        sim_cfg.sample_period = Some(1.0);
        let outcome = Simulation::build(cluster, b.finish())
            .scheduler(TetrisScheduler::new(cfg))
            .config(sim_cfg)
            .run();
        let cap = MachineSpec::paper_large().capacity();
        let overallocated = outcome.samples.iter().any(|s| {
            s.machines.as_ref().unwrap().iter().any(|ms| {
                ms.allocated.get(Resource::DiskWrite) > cap.get(Resource::DiskWrite) * 1.01
            })
        });
        assert!(overallocated, "expected IO over-allocation in the ablation");
        // ... and the contention stretches the tasks well past ideal.
        assert!(
            outcome.mean_task_stretch() > 1.5,
            "stretch {}",
            outcome.mean_task_stretch()
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            Simulation::build(
                ClusterConfig::uniform(5, MachineSpec::paper_large()),
                WorkloadSuiteConfig::small().generate(2),
            )
            .scheduler(TetrisScheduler::new(TetrisConfig::default()))
            .seed(2)
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(
            a.tasks.iter().map(|t| t.finish).collect::<Vec<_>>(),
            b.tasks.iter().map(|t| t.finish).collect::<Vec<_>>()
        );
    }
}
