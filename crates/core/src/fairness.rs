//! The fairness knob (paper §3.4).
//!
//! "When resources become available, Tetris sorts the jobs (set J) in
//! decreasing order of how far they are from their fair share. It then
//! looks for the best task among the runnable tasks belonging to the first
//! ⌈(1−f)·|J|⌉ jobs in the sorted list. Setting f = 0 results in the most
//! efficient scheduling choice, whereas f → 1 yields perfect fairness."

use tetris_resources::{Resource, ResourceVec};
use tetris_workload::JobId;

/// How a job's distance from its fair share is measured. Tetris composes
/// with "most policies for fairness" (§3.4); the two it evaluates against:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessMeasure {
    /// DRF-style: a job's share is its dominant share over the given
    /// dimension set; furthest-below-equal-share first.
    #[default]
    DominantShare,
    /// Slot-style: a job's share is its running-task count (slots held).
    Slots,
}

/// Compute a job's current share under the measure, given its allocation,
/// running-task count and the cluster totals.
pub fn job_share(
    measure: FairnessMeasure,
    allocated: &ResourceVec,
    running_tasks: usize,
    total_capacity: &ResourceVec,
    total_slots: usize,
) -> f64 {
    match measure {
        FairnessMeasure::DominantShare => allocated.dominant_share(total_capacity, &Resource::ALL),
        FairnessMeasure::Slots => {
            if total_slots == 0 {
                0.0
            } else {
                running_tasks as f64 / total_slots as f64
            }
        }
    }
}

/// Sort jobs by increasing share (the head of the list is furthest below
/// its fair share) and return the eligible prefix of size
/// `⌈(1−f)·|J|⌉`. Ties break by job id for determinism.
///
/// `f = 0` → every job is eligible (pure packing); `f → 1` → only the
/// most-starved job is eligible (strict fairness).
pub fn eligible_jobs(mut shares: Vec<(JobId, f64)>, fairness_knob: f64) -> Vec<JobId> {
    eligible_jobs_in_place(&mut shares, fairness_knob);
    shares.into_iter().map(|(j, _)| j).collect()
}

/// As [`eligible_jobs`], sorting and truncating the caller's vector in
/// place (the eligible jobs remain as its prefix) — the allocation-free
/// form used on the per-event hot path.
pub fn eligible_jobs_in_place(shares: &mut Vec<(JobId, f64)>, fairness_knob: f64) {
    assert!(
        (0.0..=1.0).contains(&fairness_knob),
        "fairness knob must be in [0,1]"
    );
    let n = shares.len();
    if n == 0 {
        return;
    }
    shares.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("NaN share")
            .then_with(|| a.0.cmp(&b.0))
    });
    let k = (((1.0 - fairness_knob) * n as f64).ceil() as usize).clamp(1, n);
    shares.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shares(v: &[f64]) -> Vec<(JobId, f64)> {
        v.iter().enumerate().map(|(i, &s)| (JobId(i), s)).collect()
    }

    #[test]
    fn f_zero_admits_everyone() {
        let e = eligible_jobs(shares(&[0.5, 0.1, 0.3]), 0.0);
        assert_eq!(e.len(), 3);
        // Sorted: most-starved first.
        assert_eq!(e, vec![JobId(1), JobId(2), JobId(0)]);
    }

    #[test]
    fn f_near_one_admits_only_most_starved() {
        let e = eligible_jobs(shares(&[0.5, 0.1, 0.3]), 0.99);
        assert_eq!(e, vec![JobId(1)]);
    }

    #[test]
    fn quarter_knob_drops_the_top_quarter() {
        let e = eligible_jobs(shares(&[0.1, 0.2, 0.3, 0.4]), 0.25);
        assert_eq!(e, vec![JobId(0), JobId(1), JobId(2)]);
    }

    #[test]
    fn ties_break_by_job_id() {
        let e = eligible_jobs(shares(&[0.2, 0.2, 0.2]), 0.5);
        assert_eq!(e, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(eligible_jobs(vec![], 0.25).is_empty());
    }

    #[test]
    fn at_least_one_job_is_always_eligible() {
        let e = eligible_jobs(shares(&[0.9]), 1.0);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn dominant_share_uses_max_ratio() {
        let cap = ResourceVec::zero()
            .with(Resource::Cpu, 10.0)
            .with(Resource::Mem, 100.0);
        let alloc = ResourceVec::zero()
            .with(Resource::Cpu, 2.0)
            .with(Resource::Mem, 50.0);
        let s = job_share(FairnessMeasure::DominantShare, &alloc, 3, &cap, 10);
        assert_eq!(s, 0.5);
    }

    #[test]
    fn slot_share_counts_tasks() {
        let cap = ResourceVec::zero();
        let s = job_share(FairnessMeasure::Slots, &cap, 3, &cap, 12);
        assert_eq!(s, 0.25);
        assert_eq!(job_share(FairnessMeasure::Slots, &cap, 3, &cap, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "fairness knob")]
    fn rejects_out_of_range_knob() {
        eligible_jobs(vec![], 1.5);
    }
}
