//! The §3.3 worked example and scheduler-level behaviours: packing alone
//! mis-orders jobs; the SRTF term fixes it; heterogeneous clusters place
//! big tasks on big machines.

use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_resources::{units::GB, MachineSpec};
use tetris_sim::{ClusterConfig, Simulation};
use tetris_workload::gen::{two_job_packing_example, TaskParams, WorkloadBuilder};
use tetris_workload::JobId;

/// Paper §3.3: two machines of 16 cores/32 GB; job 0 has six
/// (16-core, 16 GB) tasks — perfectly aligned, so pure packing runs them
/// first — job 1 has two (8-core, 8 GB) tasks. Equal durations: serving
/// the small job first lowers the average. The combined scorer must do
/// that; the packing-only scorer must not.
#[test]
fn srtf_term_fixes_the_packing_only_ordering() {
    let w = two_job_packing_example(6, 2, 10.0);
    let cluster = ClusterConfig::uniform(2, MachineSpec::paper_large());
    let run = |cfg: TetrisConfig| {
        Simulation::build(cluster.clone(), w.clone())
            .scheduler(TetrisScheduler::new(cfg))
            .seed(1)
            .run()
    };

    let packing = run(TetrisConfig::packing_only());
    let mut combined_cfg = TetrisConfig::default();
    combined_cfg.fairness_knob = 0.0; // isolate the SRTF effect
    let combined = run(combined_cfg);

    // Pure packing prefers the big, perfectly-aligned tasks: the small job
    // waits behind at least part of the big one.
    let small_under_packing = packing.jct(JobId(1)).unwrap();
    let small_under_combined = combined.jct(JobId(1)).unwrap();
    assert!(
        small_under_combined < small_under_packing,
        "combined {small_under_combined} should beat packing-only {small_under_packing}"
    );
    // And the average improves.
    assert!(combined.avg_jct() <= packing.avg_jct() + 1e-6);
    // Total work is conserved: makespan unchanged (both fill the cluster).
    assert!((combined.makespan() - packing.makespan()).abs() < 10.0 + 1e-6);
}

/// Heterogeneous cluster: one big machine (16 cores) among small ones
/// (4 cores). A 12-core task is only feasible on the big machine, and
/// Tetris must find it while packing the small tasks elsewhere.
#[test]
fn heterogeneous_cluster_places_big_tasks_on_big_machines() {
    let mut machines = vec![MachineSpec::paper_small(); 3];
    machines.push(MachineSpec::paper_large());
    let cluster = ClusterConfig {
        machines,
        machines_per_rack: 20,
    };

    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("mixed", None, 0.0);
    b.add_stage(j, "small", vec![], 9, |_| TaskParams {
        cores: 2.0,
        mem: 2.0 * GB,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let big = b.begin_job("big", None, 0.0);
    b.add_stage(big, "large", vec![], 2, |_| TaskParams {
        cores: 12.0,
        mem: 16.0 * GB,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });

    let outcome = Simulation::build(cluster, b.finish())
        .scheduler(TetrisScheduler::new(TetrisConfig::default()))
        .seed(2)
        .run();
    assert!(outcome.all_jobs_completed());
    // Every large task ran on the one machine that can hold it.
    for t in outcome.tasks.iter().filter(|t| t.job == JobId(1)) {
        assert_eq!(t.machine.unwrap().index(), 3, "large task on small machine");
    }
}

/// Alignment actually steers placement: with two machines where one has
/// its network consumed by a reservation-heavy task, a network-hungry task
/// goes to the other machine even though CPU/memory fit on both.
#[test]
fn alignment_prefers_machines_with_the_needed_resource_free() {
    let cluster = ClusterConfig::uniform(2, MachineSpec::paper_large());
    let mut b = WorkloadBuilder::new();
    // Job 0: one long network-saturating task (to be placed first).
    let j0 = b.begin_job("nethog", None, 0.0);
    b.add_stage(j0, "s", vec![], 1, |_| TaskParams {
        cores: 1.0,
        mem: GB,
        duration: 100.0,
        cpu_frac: 0.05,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 12.0 * GB, // ~120 MB/s of disk write... use net
        remote_frac: 1.0,
    });
    // Job 1 arrives later: two disk-write-hungry tasks.
    let j1 = b.begin_job("writers", None, 5.0);
    b.add_stage(j1, "s", vec![], 1, |_| TaskParams {
        cores: 1.0,
        mem: GB,
        duration: 50.0,
        cpu_frac: 0.05,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 8.0 * GB, // 160 MB/s — only fits where disk is free
        remote_frac: 1.0,
    });
    let outcome = Simulation::build(cluster, b.finish())
        .scheduler(TetrisScheduler::new(TetrisConfig::default()))
        .seed(3)
        .run();
    assert!(outcome.all_jobs_completed());
    let hog = outcome.tasks[0].machine.unwrap();
    let writer = outcome.tasks[1].machine.unwrap();
    assert_ne!(
        hog, writer,
        "the disk-hungry task should avoid the disk-loaded machine"
    );
    // Neither task was stretched: placement avoided the contention.
    assert!(outcome.mean_task_stretch() < 1.01);
}
