//! Property-based invariants of the Tetris scheduler under random
//! workloads: completion, determinism, strict no-over-allocation when
//! idle reclamation is off, and score sanity across all alignment kinds.

use proptest::prelude::*;
use tetris_core::{AlignmentKind, TetrisConfig, TetrisScheduler};
use tetris_resources::{units::GB, units::MB, MachineSpec, Resource, ResourceVec};
use tetris_sim::{ClusterConfig, SimConfig, Simulation};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::Workload;

fn arb_workload() -> impl Strategy<Value = Workload> {
    let job = (
        1usize..=5,     // tasks per stage
        0.25f64..=3.0,  // cores
        0.25f64..=6.0,  // mem GB
        2.0f64..=25.0,  // duration
        0.0f64..=300.0, // output MB
        0.0f64..=40.0,  // arrival
    );
    proptest::collection::vec(job, 1..=4).prop_map(|jobs| {
        let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
        for (ji, (n, cores, mem_gb, dur, out_mb, arrival)) in jobs.into_iter().enumerate() {
            let j = b.begin_job(format!("j{ji}"), None, arrival);
            let inputs: Vec<_> = (0..n).map(|_| b.stored_input(32.0 * MB)).collect();
            b.add_stage(j, "map", vec![], n, |i| TaskParams {
                cores,
                mem: mem_gb * GB,
                duration: dur,
                cpu_frac: 0.7,
                io_burst: 1.0,
                inputs: vec![inputs[i]],
                output_bytes: out_mb * MB,
                remote_frac: 1.0,
            });
        }
        b.finish()
    })
}

fn arb_config() -> impl Strategy<Value = TetrisConfig> {
    (
        0.0f64..=0.99,
        prop_oneof![Just(0.8), Just(0.9), Just(1.0)],
        0.0f64..=0.3,
        prop_oneof![Just(0.0), Just(1.0), Just(2.0)],
        proptest::sample::select(AlignmentKind::ALL.to_vec()),
    )
        .prop_map(|(f, b, rp, m, align)| {
            let mut cfg = TetrisConfig::default();
            cfg.fairness_knob = f;
            cfg.barrier_knob = b;
            cfg.remote_penalty = rp;
            cfg.srtf_multiplier = m;
            cfg.alignment = align;
            cfg
        })
}

fn run(w: &Workload, tc: TetrisConfig, reclaim: bool) -> tetris_sim::SimOutcome {
    let mut cfg = SimConfig::default();
    cfg.seed = 7;
    cfg.reclaim_idle = reclaim;
    cfg.max_time = 50_000.0;
    Simulation::build(
        ClusterConfig::uniform(3, MachineSpec::paper_small()),
        w.clone(),
    )
    .scheduler(TetrisScheduler::new(tc))
    .config(cfg)
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn completes_under_any_knob_setting(w in arb_workload(), tc in arb_config()) {
        let o = run(&w, tc, true);
        prop_assert!(o.all_jobs_completed(), "did not complete");
        let done = o.tasks.iter().filter(|t| t.finish.is_some()).count();
        prop_assert_eq!(done, w.num_tasks());
    }

    #[test]
    fn never_overallocates_without_reclamation(w in arb_workload(), tc in arb_config()) {
        let o = run(&w, tc, false);
        prop_assert!(o.all_jobs_completed());
        let cap = MachineSpec::paper_small().capacity();
        for s in &o.samples {
            for ms in s.machines.as_ref().unwrap() {
                for r in Resource::ALL {
                    prop_assert!(
                        ms.allocated.get(r) <= cap.get(r) * (1.0 + 1e-9) + 1e-6,
                        "over-allocated {r}: {}",
                        ms.allocated.get(r)
                    );
                }
            }
        }
    }

    #[test]
    fn memory_never_overcommitted_even_with_reclamation(
        w in arb_workload(),
        tc in arb_config(),
    ) {
        let o = run(&w, tc, true);
        let cap = MachineSpec::paper_small().capacity().get(Resource::Mem);
        for s in &o.samples {
            for ms in s.machines.as_ref().unwrap() {
                prop_assert!(
                    ms.allocated.get(Resource::Mem) <= cap * (1.0 + 1e-9),
                    "memory over-committed: {}",
                    ms.allocated.get(Resource::Mem)
                );
            }
        }
    }

    #[test]
    fn deterministic_replay(w in arb_workload(), tc in arb_config()) {
        let a = run(&w, tc.clone(), true);
        let b = run(&w, tc, true);
        prop_assert_eq!(a.makespan(), b.makespan());
        prop_assert_eq!(
            a.tasks.iter().map(|t| (t.machine, t.finish)).collect::<Vec<_>>(),
            b.tasks.iter().map(|t| (t.machine, t.finish)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn alignment_scores_finite_and_monotone_under_scaling(
        cpu in 0.1f64..4.0,
        mem in 0.1f64..8.0,
        frac in 0.1f64..1.0,
    ) {
        // For the cosine scorer, shrinking a fitting demand shrinks the
        // score (bigger aligned tasks are preferred, §3.2).
        let capacity = MachineSpec::paper_large().capacity();
        let avail = capacity * 0.8;
        let d = ResourceVec::zero()
            .with(Resource::Cpu, cpu)
            .with(Resource::Mem, mem * GB);
        let k = AlignmentKind::Cosine;
        let full = k.score(&d, &avail, &capacity);
        let scaled = k.score(&(d * frac), &avail, &capacity);
        prop_assert!(full.is_finite() && scaled.is_finite());
        prop_assert!(scaled <= full + 1e-12);
        for kind in AlignmentKind::ALL {
            prop_assert!(kind.score(&d, &avail, &capacity).is_finite());
        }
    }
}
