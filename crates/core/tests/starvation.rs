//! The §3.5 starvation-prevention extension, end to end.
//!
//! A single machine runs a churn of small tasks; a large task (14 of 16
//! cores) arrives early but never finds 14 cores free because freed cores
//! are instantly taken by more small tasks. With reservations, Tetris
//! notices the starved task after `patience` seconds, reserves the
//! machine, lets it drain, and runs the large task; without them, the
//! large task waits for the churn to end.

use tetris_core::{StarvationConfig, TetrisConfig, TetrisScheduler};
use tetris_resources::{units::GB, MachineSpec, ResourceVec};
use tetris_sim::{ClusterConfig, SimConfig, Simulation};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::{JobId, Workload};

fn starvation_workload() -> Workload {
    let mut b = WorkloadBuilder::new();
    let churn = b.begin_job("churn", None, 0.0);
    // Durations staggered per task so completions never coincide: freed
    // cores come back two at a time and the large task never sees 14 free.
    b.add_stage(churn, "small", vec![], 200, |i| TaskParams {
        cores: 2.0,
        mem: 2.0 * GB,
        duration: 8.0 + (i % 7) as f64 * 1.3,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let big = b.begin_job("big", None, 5.0);
    b.add_stage(big, "large", vec![], 1, |_| TaskParams {
        cores: 14.0,
        mem: 8.0 * GB,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    b.finish()
}

fn run(starvation: Option<StarvationConfig>) -> tetris_sim::SimOutcome {
    let spec = MachineSpec::new()
        .cores(16.0)
        .memory(32.0 * GB)
        .disks(4, 50e6)
        .nic(125e6);
    let mut tc = TetrisConfig::default();
    // Pure packing pressure: no SRTF reordering, no fairness restriction.
    tc.srtf_multiplier = 0.0;
    tc.fairness_knob = 0.0;
    tc.starvation = starvation;
    let mut cfg = SimConfig::default();
    cfg.seed = 1;
    Simulation::build(ClusterConfig::uniform(1, spec), starvation_workload())
        .scheduler(TetrisScheduler::new(tc))
        .config(cfg)
        .run()
}

#[test]
fn reservation_rescues_the_starved_task() {
    let patience = 60.0;
    let with = run(Some(StarvationConfig {
        patience,
        max_reservations: 1,
    }));
    let without = run(None);
    assert!(with.all_jobs_completed());
    assert!(without.all_jobs_completed());

    let big_with = with.jct(JobId(1)).unwrap();
    let big_without = without.jct(JobId(1)).unwrap();

    // Without reservations the big task waits out most of the churn
    // (200 tasks / 8 concurrent × 10 s ≈ 250 s).
    assert!(
        big_without > 150.0,
        "expected starvation without reservations, big jct = {big_without}"
    );
    // With reservations it runs shortly after the patience threshold:
    // reservation at ~65 s, machine drains ≤ 10 s, task runs 10 s.
    assert!(
        big_with < patience + 40.0,
        "reservation did not rescue the task: big jct = {big_with}"
    );
    assert!(big_with < big_without / 2.0);
}

#[test]
fn reservation_cost_to_everyone_else_is_bounded() {
    let with = run(Some(StarvationConfig {
        patience: 60.0,
        max_reservations: 1,
    }));
    let without = run(None);
    // The churn job pays only the drain window, a small fraction of its
    // total runtime.
    let churn_with = with.jct(JobId(0)).unwrap();
    let churn_without = without.jct(JobId(0)).unwrap();
    assert!(
        churn_with < churn_without * 1.15,
        "churn slowed too much: {churn_with} vs {churn_without}"
    );
}

#[test]
fn no_reservations_when_nothing_starves() {
    // Plenty of room: the large task fits immediately; behaviour must be
    // identical with and without the mechanism.
    let spec = MachineSpec::new()
        .cores(16.0)
        .memory(32.0 * GB)
        .disks(4, 50e6)
        .nic(125e6);
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("j", None, 0.0);
    b.add_stage(j, "s", vec![], 4, |_| TaskParams {
        cores: 2.0,
        mem: 2.0 * GB,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let w = b.finish();
    let run_one = |starve: Option<StarvationConfig>| {
        let mut tc = TetrisConfig::default();
        tc.starvation = starve;
        Simulation::build(ClusterConfig::uniform(2, spec), w.clone())
            .scheduler(TetrisScheduler::new(tc))
            .seed(2)
            .run()
    };
    let a = run_one(Some(StarvationConfig::default()));
    let b_ = run_one(None);
    assert_eq!(a.makespan(), b_.makespan());
    assert_eq!(
        a.tasks.iter().map(|t| t.finish).collect::<Vec<_>>(),
        b_.tasks.iter().map(|t| t.finish).collect::<Vec<_>>()
    );
}

#[test]
fn reserved_vector_is_observable() {
    // API surface: reserved_machines() reports and clears.
    let mut tc = TetrisConfig::default();
    tc.starvation = Some(StarvationConfig::default());
    let s = TetrisScheduler::new(tc);
    assert!(s.reserved_machines().is_empty());
    let _ = ResourceVec::zero();
}
