//! Per-job completion-time improvement between two runs of the *same*
//! workload (the paper's Figs. 4 and 7: "CDF of change in job completion
//! time", computed as `100 × (baseline − ours) / baseline` per job).

use tetris_sim::SimOutcome;
use tetris_workload::stats::Ecdf;

use crate::pct_improvement;

/// Distribution of per-job JCT improvements of one run over a baseline.
#[derive(Debug, Clone)]
pub struct ImprovementSummary {
    /// Name of the improved scheduler.
    pub ours: String,
    /// Name of the baseline scheduler.
    pub baseline: String,
    /// Per-job improvement (%), indexed like the workload's jobs (only
    /// jobs finished in both runs).
    pub per_job: Vec<f64>,
    /// Makespan improvement (%).
    pub makespan: f64,
    /// Average-JCT improvement (%) — note: improvement *of the averages*,
    /// as the paper reports, not the average of per-job improvements.
    pub avg_jct: f64,
}

impl ImprovementSummary {
    /// Compare two outcomes of the same workload.
    ///
    /// # Panics
    /// If the runs have different job counts (different workloads).
    pub fn compare(ours: &SimOutcome, baseline: &SimOutcome) -> Self {
        assert_eq!(
            ours.jobs.len(),
            baseline.jobs.len(),
            "comparing runs of different workloads"
        );
        let per_job = ours
            .jobs
            .iter()
            .zip(&baseline.jobs)
            .filter_map(|(o, b)| match (o.jct(), b.jct()) {
                (Some(x), Some(y)) => Some(pct_improvement(y, x)),
                _ => None,
            })
            .collect();
        ImprovementSummary {
            ours: ours.scheduler.clone(),
            baseline: baseline.scheduler.clone(),
            per_job,
            makespan: pct_improvement(baseline.makespan(), ours.makespan()),
            avg_jct: pct_improvement(baseline.avg_jct(), ours.avg_jct()),
        }
    }

    /// Empirical CDF of per-job improvements.
    pub fn ecdf(&self) -> Ecdf {
        Ecdf::new(self.per_job.clone())
    }

    /// Median per-job improvement (%).
    pub fn median(&self) -> f64 {
        tetris_workload::stats::median(&self.per_job)
    }

    /// Improvement at the `q`-th percentile of jobs (%), e.g. `0.9` for
    /// "the top decile of jobs improve by ...".
    pub fn percentile(&self, q: f64) -> f64 {
        tetris_workload::stats::percentile(&self.per_job, q)
    }

    /// Fraction of jobs that *slowed down* (negative improvement).
    pub fn frac_slowed(&self) -> f64 {
        self.ecdf().frac_below(0.0)
    }

    /// Render the CDF as `(improvement %, cumulative fraction)` rows at
    /// `n` quantiles — the series the figure harness prints.
    pub fn render_cdf(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# per-job JCT improvement of {} over {} (%, CDF)\n",
            self.ours, self.baseline
        ));
        out.push_str(&format!("{:>12} {:>8}\n", "improv_%", "cdf"));
        for (x, q) in self.ecdf().series(n) {
            out.push_str(&format!("{x:>12.1} {q:>8.2}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_sim::{EngineStats, JobRecord};
    use tetris_workload::JobId;

    fn outcome(name: &str, jcts: &[f64]) -> SimOutcome {
        SimOutcome {
            scheduler: name.into(),
            completed: true,
            final_time: 0.0,
            jobs: jcts
                .iter()
                .enumerate()
                .map(|(i, &jct)| JobRecord {
                    id: JobId(i),
                    name: format!("j{i}"),
                    family: None,
                    arrival: 0.0,
                    first_start: Some(0.0),
                    finish: Some(jct),
                    num_tasks: 1,
                })
                .collect(),
            tasks: vec![],
            samples: vec![],
            stats: EngineStats::default(),
        }
    }

    #[test]
    fn per_job_improvements() {
        let ours = outcome("tetris", &[50.0, 100.0, 120.0]);
        let base = outcome("fair", &[100.0, 100.0, 100.0]);
        let imp = ImprovementSummary::compare(&ours, &base);
        assert_eq!(imp.per_job, vec![50.0, 0.0, -20.0]);
        assert!((imp.frac_slowed() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(imp.median(), 0.0);
        // makespan: 120 vs 100 → -20 %.
        assert_eq!(imp.makespan, -20.0);
    }

    #[test]
    fn skips_unfinished_jobs() {
        let mut ours = outcome("a", &[10.0, 20.0]);
        ours.jobs[1].finish = None;
        let base = outcome("b", &[20.0, 20.0]);
        let imp = ImprovementSummary::compare(&ours, &base);
        assert_eq!(imp.per_job.len(), 1);
    }

    #[test]
    fn render_contains_names() {
        let imp =
            ImprovementSummary::compare(&outcome("tetris", &[50.0]), &outcome("drf", &[100.0]));
        let s = imp.render_cdf(4);
        assert!(s.contains("tetris"));
        assert!(s.contains("drf"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    #[should_panic(expected = "different workloads")]
    fn mismatched_runs_panic() {
        let _ = ImprovementSummary::compare(&outcome("a", &[1.0]), &outcome("b", &[1.0, 2.0]));
    }
}
