//! Unfairness metrics: job slowdown versus a fair baseline (Fig. 9) and
//! relative integral unfairness (§5.3.2).

use tetris_resources::Resource;
use tetris_sim::SimOutcome;
use tetris_workload::JobId;

/// How jobs fared against a fair baseline run of the same workload
/// (the paper's Fig. 9: "% jobs slowing down" and "avg (max) slowdown").
#[derive(Debug, Clone)]
pub struct SlowdownSummary {
    /// Fraction of jobs with a longer JCT than under the baseline.
    pub frac_slowed: f64,
    /// Average slowdown (%) among slowed jobs only.
    pub avg_slowdown_pct: f64,
    /// Worst slowdown (%).
    pub max_slowdown_pct: f64,
}

impl SlowdownSummary {
    /// Compare a run against a fair-scheduler baseline on the same
    /// workload.
    pub fn compare(ours: &SimOutcome, fair_baseline: &SimOutcome) -> Self {
        assert_eq!(ours.jobs.len(), fair_baseline.jobs.len());
        let mut slowed = Vec::new();
        let mut n = 0usize;
        for (o, b) in ours.jobs.iter().zip(&fair_baseline.jobs) {
            if let (Some(x), Some(y)) = (o.jct(), b.jct()) {
                n += 1;
                if x > y {
                    slowed.push(100.0 * (x - y) / y);
                }
            }
        }
        let frac_slowed = if n == 0 {
            0.0
        } else {
            slowed.len() as f64 / n as f64
        };
        SlowdownSummary {
            frac_slowed,
            avg_slowdown_pct: tetris_workload::stats::mean(&slowed),
            max_slowdown_pct: slowed.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// Relative integral unfairness of one job (§5.3.2):
/// `∫ (a(t) − f(t)) / f(t) dt` over the job's lifetime, where `a(t)` is the
/// dominant share the job actually held and `f(t)` its purported fair
/// share (`1 / #active jobs` at `t`). Values below zero mean the job
/// received worse service than a fair scheme would have given it.
///
/// Requires the run to have been recorded with `record_job_samples`.
/// The integral is evaluated by the rectangle rule over the sample grid
/// and normalized by the job's lifetime so jobs of different lengths are
/// comparable.
pub fn relative_integral_unfairness(outcome: &SimOutcome, job: JobId) -> Option<f64> {
    let rec = &outcome.jobs[job.index()];
    let finish = rec.finish?;
    let arrival = rec.arrival;
    if finish <= arrival {
        return Some(0.0);
    }

    // Dominant share uses the cluster total; reconstruct it from the first
    // sample's machine capacities is not possible, so use allocation
    // relative to the maximum concurrent cluster allocation as reference.
    // Simpler and faithful: dominant share over the aggregate allocation
    // vector is not available here — instead use the job's share of
    // *total allocated* resources, dimension-maximized.
    let mut integral = 0.0;
    let mut covered = 0.0;
    let mut prev_t: Option<f64> = None;
    for s in &outcome.samples {
        if s.t < arrival || s.t > finish {
            prev_t = Some(s.t);
            continue;
        }
        let dt = match prev_t {
            Some(p) => (s.t - p.max(arrival)).max(0.0),
            None => 0.0,
        };
        prev_t = Some(s.t);
        if dt == 0.0 {
            continue;
        }
        let per_job = s.per_job_alloc.as_ref()?;
        // Active jobs at this instant (arrived, unfinished).
        let active = outcome
            .jobs
            .iter()
            .filter(|j| j.arrival <= s.t && j.finish.is_none_or(|f| f >= s.t))
            .count()
            .max(1);
        let fair = 1.0 / active as f64;
        // The job's dominant share of the cluster-wide allocation.
        let total = s.cluster_allocated;
        let mut share: f64 = 0.0;
        for r in Resource::ALL {
            let t = total.get(r);
            if t > 0.0 {
                share = share.max(per_job[job.index()].get(r) / t);
            }
        }
        integral += dt * (share - fair) / fair;
        covered += dt;
    }
    if covered == 0.0 {
        return Some(0.0);
    }
    Some(integral / (finish - arrival))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::ResourceVec;
    use tetris_sim::{EngineStats, JobRecord, Sample};

    fn job(id: usize, arrival: f64, finish: Option<f64>) -> JobRecord {
        JobRecord {
            id: JobId(id),
            name: format!("j{id}"),
            family: None,
            arrival,
            first_start: Some(arrival),
            finish,
            num_tasks: 1,
        }
    }

    fn outcome(jobs: Vec<JobRecord>, samples: Vec<Sample>) -> SimOutcome {
        SimOutcome {
            scheduler: "t".into(),
            completed: true,
            final_time: 100.0,
            jobs,
            tasks: vec![],
            samples,
            stats: EngineStats::default(),
        }
    }

    #[test]
    fn slowdown_summary_counts_only_slowed() {
        let ours = outcome(
            vec![job(0, 0.0, Some(110.0)), job(1, 0.0, Some(80.0))],
            vec![],
        );
        let base = outcome(
            vec![job(0, 0.0, Some(100.0)), job(1, 0.0, Some(100.0))],
            vec![],
        );
        let s = SlowdownSummary::compare(&ours, &base);
        assert_eq!(s.frac_slowed, 0.5);
        assert!((s.avg_slowdown_pct - 10.0).abs() < 1e-9);
        assert!((s.max_slowdown_pct - 10.0).abs() < 1e-9);
    }

    #[test]
    fn no_slowdowns_is_zero() {
        let ours = outcome(vec![job(0, 0.0, Some(50.0))], vec![]);
        let base = outcome(vec![job(0, 0.0, Some(100.0))], vec![]);
        let s = SlowdownSummary::compare(&ours, &base);
        assert_eq!(s.frac_slowed, 0.0);
        assert_eq!(s.max_slowdown_pct, 0.0);
    }

    fn sample(t: f64, shares: &[f64]) -> Sample {
        let per_job: Vec<ResourceVec> = shares
            .iter()
            .map(|&s| ResourceVec::zero().with(Resource::Cpu, s))
            .collect();
        let total: f64 = shares.iter().sum();
        Sample {
            t,
            running_tasks: shares.len(),
            cluster_allocated: ResourceVec::zero().with(Resource::Cpu, total),
            cluster_usage: ResourceVec::zero(),
            machines: None,
            per_job_alloc: Some(per_job),
        }
    }

    #[test]
    fn riu_zero_for_equal_shares() {
        // Two jobs, always 50/50 → fair share 0.5, actual 0.5 → RIU 0.
        let o = outcome(
            vec![job(0, 0.0, Some(100.0)), job(1, 0.0, Some(100.0))],
            (0..=10)
                .map(|i| sample(i as f64 * 10.0, &[1.0, 1.0]))
                .collect(),
        );
        let riu = relative_integral_unfairness(&o, JobId(0)).unwrap();
        assert!(riu.abs() < 1e-9, "riu={riu}");
    }

    #[test]
    fn riu_negative_for_underserved_job() {
        // Job 0 holds 25 % while fair is 50 %.
        let o = outcome(
            vec![job(0, 0.0, Some(100.0)), job(1, 0.0, Some(100.0))],
            (0..=10)
                .map(|i| sample(i as f64 * 10.0, &[1.0, 3.0]))
                .collect(),
        );
        let riu = relative_integral_unfairness(&o, JobId(0)).unwrap();
        assert!(riu < -0.4, "riu={riu}");
        let riu1 = relative_integral_unfairness(&o, JobId(1)).unwrap();
        assert!(riu1 > 0.4, "riu1={riu1}");
    }

    #[test]
    fn riu_none_without_job_samples() {
        let mut s = sample(10.0, &[1.0]);
        s.per_job_alloc = None;
        let o = outcome(vec![job(0, 0.0, Some(100.0))], vec![sample(0.0, &[1.0]), s]);
        assert_eq!(relative_integral_unfairness(&o, JobId(0)), None);
    }

    #[test]
    fn riu_unfinished_job_is_none() {
        let o = outcome(vec![job(0, 0.0, None)], vec![]);
        assert_eq!(relative_integral_unfairness(&o, JobId(0)), None);
    }
}
