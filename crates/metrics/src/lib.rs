//! # tetris-metrics
//!
//! Evaluation metrics and report rendering for the Tetris reproduction:
//! the quantities the paper's §5 tables and figures are made of.
//!
//! * [`RunMetrics`] — one-line summary of a simulation run;
//! * [`improvement`] — per-job JCT improvement of one scheduler over
//!   another and its CDF (Figs. 4, 7);
//! * [`slowdown`] — fraction/magnitude of jobs slowed versus a fair
//!   baseline (Fig. 9) and relative integral unfairness (§5.3.2);
//! * [`timeline`] — running-task and utilization time series (Figs. 5, 6);
//! * [`tightness`] — resource tightness probabilities (Tables 3 and 6);
//! * [`gantt`] — ASCII machine-occupancy charts of a schedule;
//! * [`table`] — plain-text table rendering shared by the experiment
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gantt;
pub mod improvement;
pub mod slowdown;
pub mod table;
pub mod tightness;
pub mod timeline;

pub use improvement::ImprovementSummary;
pub use slowdown::{relative_integral_unfairness, SlowdownSummary};

use tetris_sim::SimOutcome;
use tetris_workload::stats;

/// One-line summary of a run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Scheduler name.
    pub scheduler: String,
    /// True if all jobs completed.
    pub completed: bool,
    /// Makespan (seconds).
    pub makespan: f64,
    /// Average job completion time (seconds).
    pub avg_jct: f64,
    /// Median job completion time (seconds).
    pub median_jct: f64,
    /// Mean task stretch (actual / planned duration; 1.0 = no contention).
    pub mean_stretch: f64,
    /// Task placements performed.
    pub placements: u64,
}

impl RunMetrics {
    /// Summarize an outcome.
    pub fn of(outcome: &SimOutcome) -> Self {
        let jcts = outcome.jct_vec();
        RunMetrics {
            scheduler: outcome.scheduler.clone(),
            completed: outcome.completed,
            makespan: outcome.makespan(),
            avg_jct: outcome.avg_jct(),
            median_jct: stats::median(&jcts),
            mean_stretch: outcome.mean_task_stretch(),
            placements: outcome.stats.placements,
        }
    }

    /// Render as a fixed-width row (pairs with [`RunMetrics::header`]).
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>9} {:>11.1} {:>11.1} {:>11.1} {:>8.2}",
            truncate(&self.scheduler, 28),
            if self.completed { "yes" } else { "NO" },
            self.makespan,
            self.avg_jct,
            self.median_jct,
            self.mean_stretch,
        )
    }

    /// Header matching [`RunMetrics::row`].
    pub fn header() -> String {
        format!(
            "{:<28} {:>9} {:>11} {:>11} {:>11} {:>8}",
            "scheduler", "completed", "makespan_s", "avg_jct_s", "med_jct_s", "stretch"
        )
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

/// Percentage improvement of `ours` over `baseline`
/// (`100 × (baseline − ours)/baseline`, the paper's §5.1 metric: positive
/// means we are better/smaller).
pub fn pct_improvement(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        100.0 * (baseline - ours) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_improvement_signs() {
        assert_eq!(pct_improvement(100.0, 60.0), 40.0);
        assert_eq!(pct_improvement(100.0, 130.0), -30.0);
        assert_eq!(pct_improvement(0.0, 10.0), 0.0);
    }

    #[test]
    fn truncate_keeps_short() {
        assert_eq!(truncate("abc", 5), "abc");
        assert_eq!(truncate("abcdef", 4), "abc…");
    }

    #[test]
    fn header_and_row_align() {
        let m = RunMetrics {
            scheduler: "x".into(),
            completed: true,
            makespan: 1.0,
            avg_jct: 2.0,
            median_jct: 3.0,
            mean_stretch: 1.0,
            placements: 5,
        };
        // Same number of columns when split on whitespace.
        assert_eq!(
            RunMetrics::header().split_whitespace().count(),
            m.row().split_whitespace().count()
        );
    }
}
