//! Time-series views of a run: running tasks and per-resource utilization
//! (the paper's Figs. 5 and 6).

use tetris_resources::{Resource, ResourceVec};
use tetris_sim::{MachineId, SimOutcome};

/// One point of the cluster timeline.
#[derive(Debug, Clone, Copy)]
pub struct TimelinePoint {
    /// Time (seconds).
    pub t: f64,
    /// Running tasks.
    pub running: usize,
    /// Percent of aggregate capacity *allocated* per reporting dim
    /// (cpu, mem, disk, net) — may exceed 100 under over-allocating
    /// schedulers, which is exactly what Fig. 5c/5d show.
    pub allocated_pct: [f64; 4],
    /// Percent of aggregate capacity actually *used* (never exceeds 100
    /// on rate dims).
    pub used_pct: [f64; 4],
}

fn report4(v: &ResourceVec, cap: &ResourceVec) -> [f64; 4] {
    let pct = |num: f64, den: f64| if den > 0.0 { 100.0 * num / den } else { 0.0 };
    [
        pct(v.get(Resource::Cpu), cap.get(Resource::Cpu)),
        pct(v.get(Resource::Mem), cap.get(Resource::Mem)),
        pct(
            v.get(Resource::DiskRead) + v.get(Resource::DiskWrite),
            cap.get(Resource::DiskRead) + cap.get(Resource::DiskWrite),
        ),
        pct(
            v.get(Resource::NetIn) + v.get(Resource::NetOut),
            cap.get(Resource::NetIn) + cap.get(Resource::NetOut),
        ),
    ]
}

/// Cluster-wide timeline (Fig. 5) from a run's samples.
pub fn cluster_timeline(outcome: &SimOutcome, total_capacity: &ResourceVec) -> Vec<TimelinePoint> {
    outcome
        .samples
        .iter()
        .map(|s| TimelinePoint {
            t: s.t,
            running: s.running_tasks,
            allocated_pct: report4(&s.cluster_allocated, total_capacity),
            used_pct: report4(&s.cluster_usage, total_capacity),
        })
        .collect()
}

/// Timeline of one machine (Fig. 6: the ingestion micro-benchmark watches
/// a single loaded machine). Requires per-machine samples.
pub fn machine_timeline(
    outcome: &SimOutcome,
    machine: MachineId,
    capacity: &ResourceVec,
) -> Option<Vec<TimelinePoint>> {
    outcome
        .samples
        .iter()
        .map(|s| {
            let ms = s.machines.as_ref()?.get(machine.index())?;
            Some(TimelinePoint {
                t: s.t,
                running: ms.running,
                allocated_pct: report4(&ms.allocated, capacity),
                used_pct: report4(&ms.usage, capacity),
            })
        })
        .collect()
}

/// Render a timeline as fixed-width text (one row per point).
pub fn render(points: &[TimelinePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>9} {:>8} | {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>6}\n",
        "t_s", "tasks", "cpuA%", "memA%", "dskA%", "netA%", "cpuU%", "memU%", "dskU%", "netU%"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>9.0} {:>8} | {:>6.0} {:>6.0} {:>6.0} {:>6.0} | {:>6.0} {:>6.0} {:>6.0} {:>6.0}\n",
            p.t,
            p.running,
            p.allocated_pct[0],
            p.allocated_pct[1],
            p.allocated_pct[2],
            p.allocated_pct[3],
            p.used_pct[0],
            p.used_pct[1],
            p.used_pct[2],
            p.used_pct[3],
        ));
    }
    out
}

/// Down-sample a timeline to at most `n` evenly spaced points (keeps first
/// and last) so printed figures stay readable.
pub fn decimate(points: &[TimelinePoint], n: usize) -> Vec<TimelinePoint> {
    if points.len() <= n || n < 2 {
        return points.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let idx = i * (points.len() - 1) / (n - 1);
        out.push(points[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::MachineSpec;
    use tetris_sim::{ClusterConfig, GreedyFifo, Simulation};
    use tetris_workload::WorkloadSuiteConfig;

    fn run() -> (SimOutcome, ResourceVec) {
        let cluster = ClusterConfig::uniform(4, MachineSpec::paper_large());
        let total = cluster.total_capacity();
        let o = Simulation::build(cluster, WorkloadSuiteConfig::small().generate(3))
            .scheduler(GreedyFifo::new())
            .seed(3)
            .run();
        (o, total)
    }

    #[test]
    fn timeline_has_activity() {
        let (o, total) = run();
        let tl = cluster_timeline(&o, &total);
        assert!(!tl.is_empty());
        assert!(tl.iter().any(|p| p.running > 0));
        assert!(tl.iter().any(|p| p.used_pct[0] > 0.0));
        // Usage never exceeds 100 % on CPU.
        for p in &tl {
            assert!(p.used_pct[0] <= 100.0 + 1e-6);
        }
    }

    #[test]
    fn machine_timeline_matches_cluster_count() {
        let (o, _) = run();
        let cap = MachineSpec::paper_large().capacity();
        let tl = machine_timeline(&o, MachineId(0), &cap).expect("machine samples");
        assert_eq!(tl.len(), o.samples.len());
    }

    #[test]
    fn render_and_decimate() {
        let (o, total) = run();
        let tl = cluster_timeline(&o, &total);
        let dec = decimate(&tl, 5);
        assert!(dec.len() <= 5);
        assert_eq!(dec.first().unwrap().t, tl.first().unwrap().t);
        assert_eq!(dec.last().unwrap().t, tl.last().unwrap().t);
        let text = render(&dec);
        assert_eq!(text.lines().count(), dec.len() + 1);
    }
}
