//! Resource tightness probabilities.
//!
//! * Table 3: P(a resource is used above {50, 80, 99} % of capacity),
//!   measured cluster-wide over time — "multiple resources become tight,
//!   albeit at different machines and times".
//! * Table 6: P(a machine uses a resource above {80, 90, 100} %), measured
//!   per machine per sample under each scheduler; the >100 row can only be
//!   hit through over-allocation (demand ledger above capacity), which
//!   Tetris never does.

use tetris_resources::{Resource, ResourceVec};
use tetris_sim::SimOutcome;

/// The six per-dimension rows of a tightness table.
#[derive(Debug, Clone)]
pub struct TightnessTable {
    /// Thresholds as fractions of capacity (e.g. 0.5, 0.8, 0.99).
    pub thresholds: Vec<f64>,
    /// `rows[r][k]` = P(dimension `r` above threshold `k`).
    pub rows: [Vec<f64>; 6],
}

impl TightnessTable {
    /// Cluster-level tightness (Table 3) from aggregate usage samples.
    pub fn cluster(outcome: &SimOutcome, total_capacity: &ResourceVec, thresholds: &[f64]) -> Self {
        let mut counts = [0usize; 6].map(|_| vec![0usize; thresholds.len()]);
        let n = outcome.samples.len().max(1);
        for s in &outcome.samples {
            for r in Resource::ALL {
                let cap = total_capacity.get(r);
                if cap <= 0.0 {
                    continue;
                }
                let frac = s.cluster_usage.get(r) / cap;
                for (k, &th) in thresholds.iter().enumerate() {
                    // Small epsilon so FP accumulation in the ledgers cannot
                    // register exact-capacity commitment as over-allocation.
                    if frac > th + 1e-9 {
                        counts[r.index()][k] += 1;
                    }
                }
            }
        }
        TightnessTable {
            thresholds: thresholds.to_vec(),
            rows: counts.map(|c| c.into_iter().map(|x| x as f64 / n as f64).collect()),
        }
    }

    /// Machine-level tightness (Table 6) from the per-machine *allocation*
    /// ledger: values above 1.0 capture over-allocation. Requires
    /// per-machine samples.
    pub fn machines(
        outcome: &SimOutcome,
        machine_capacity: &ResourceVec,
        thresholds: &[f64],
    ) -> Option<Self> {
        let mut counts = [0usize; 6].map(|_| vec![0usize; thresholds.len()]);
        let mut n = 0usize;
        for s in &outcome.samples {
            let machines = s.machines.as_ref()?;
            for ms in machines {
                n += 1;
                for r in Resource::ALL {
                    let cap = machine_capacity.get(r);
                    if cap <= 0.0 {
                        continue;
                    }
                    let frac = ms.allocated.get(r) / cap;
                    for (k, &th) in thresholds.iter().enumerate() {
                        if frac > th + 1e-9 {
                            counts[r.index()][k] += 1;
                        }
                    }
                }
            }
        }
        let n = n.max(1);
        Some(TightnessTable {
            thresholds: thresholds.to_vec(),
            rows: counts.map(|c| c.into_iter().map(|x| x as f64 / n as f64).collect()),
        })
    }

    /// Probability for one dimension and threshold index.
    pub fn get(&self, r: Resource, k: usize) -> f64 {
        self.rows[r.index()][k]
    }

    /// Render in the paper's layout (one row per resource).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>10}", "resource"));
        for th in &self.thresholds {
            out.push_str(&format!(" {:>9}", format!(">{:.0}% used", th * 100.0)));
        }
        out.push('\n');
        for r in Resource::ALL {
            out.push_str(&format!("{:>10}", r.label()));
            for k in 0..self.thresholds.len() {
                out.push_str(&format!(" {:>9.3}", self.get(r, k)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::MachineSpec;
    use tetris_sim::{ClusterConfig, GreedyFifo, Simulation};
    use tetris_workload::WorkloadSuiteConfig;

    fn run() -> (SimOutcome, ResourceVec) {
        let cluster = ClusterConfig::uniform(3, MachineSpec::paper_large());
        let total = cluster.total_capacity();
        let o = Simulation::build(cluster, WorkloadSuiteConfig::small().generate(5))
            .scheduler(GreedyFifo::new())
            .seed(5)
            .run();
        (o, total)
    }

    #[test]
    fn probabilities_are_monotone_in_threshold() {
        let (o, total) = run();
        let t = TightnessTable::cluster(&o, &total, &[0.5, 0.8, 0.99]);
        for r in Resource::ALL {
            assert!(t.get(r, 0) >= t.get(r, 1));
            assert!(t.get(r, 1) >= t.get(r, 2));
            assert!(t.get(r, 0) <= 1.0);
        }
    }

    #[test]
    fn machine_table_exists_with_samples() {
        let (o, _) = run();
        let cap = MachineSpec::paper_large().capacity();
        let t = TightnessTable::machines(&o, &cap, &[0.8, 0.9, 1.0]).expect("samples");
        // Feasibility-respecting GreedyFifo never over-allocates: the
        // >100 % column must be all zeros.
        for r in Resource::ALL {
            assert_eq!(t.get(r, 2), 0.0, "{r} over-allocated");
        }
    }

    #[test]
    fn render_has_all_rows() {
        let (o, total) = run();
        let t = TightnessTable::cluster(&o, &total, &[0.5, 0.8]);
        let s = t.render();
        assert_eq!(s.lines().count(), 7);
        assert!(s.contains("net_in"));
    }
}
