//! ASCII Gantt charts of a schedule: which job ran where, when.
//!
//! Invaluable for eyeballing packing behaviour — the Figure-1 worked
//! example renders as the same block diagram the paper draws.

use tetris_sim::SimOutcome;

/// One machine's lane: for each time bucket, which job (if any) dominated
/// the machine's running tasks.
#[derive(Debug, Clone)]
pub struct Gantt {
    /// Bucket width in seconds.
    pub bucket: f64,
    /// `lanes[machine][bucket]` = dominant job index, or `None` if idle.
    pub lanes: Vec<Vec<Option<usize>>>,
    /// Number of buckets.
    pub buckets: usize,
}

impl Gantt {
    /// Build from a run's task records with `buckets` time buckets over
    /// `[0, makespan]`.
    pub fn new(outcome: &SimOutcome, n_machines: usize, buckets: usize) -> Self {
        assert!(buckets >= 1);
        let horizon = outcome.makespan().max(1e-9);
        let bucket = horizon / buckets as f64;
        // Count per (machine, bucket, job) task-seconds; keep the argmax.
        let mut occupancy =
            vec![vec![std::collections::BTreeMap::<usize, f64>::new(); buckets]; n_machines];
        for t in &outcome.tasks {
            let (Some(m), Some(s), Some(f)) = (t.machine, t.start, t.finish) else {
                continue;
            };
            let first = ((s / bucket).floor() as usize).min(buckets - 1);
            let last = ((f / bucket).ceil() as usize).clamp(first + 1, buckets);
            for b in first..last {
                let lo = (b as f64) * bucket;
                let hi = lo + bucket;
                let overlap = (f.min(hi) - s.max(lo)).max(0.0);
                if overlap > 0.0 {
                    *occupancy[m.index()][b].entry(t.job.index()).or_default() += overlap;
                }
            }
        }
        let lanes = occupancy
            .into_iter()
            .map(|machine| {
                machine
                    .into_iter()
                    .map(|counts| {
                        counts
                            .into_iter()
                            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
                            .map(|(job, _)| job)
                    })
                    .collect()
            })
            .collect();
        Gantt {
            bucket,
            lanes,
            buckets,
        }
    }

    /// Render one character per bucket per machine: `A`–`Z` by job index
    /// (wrapping, lowercase past 26), `.` when idle.
    pub fn render(&self) -> String {
        let glyph = |j: usize| {
            let letters = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
            letters[j % letters.len()] as char
        };
        let mut out = String::new();
        out.push_str(&format!(
            "time → ({} buckets × {:.0}s)\n",
            self.buckets, self.bucket
        ));
        for (mi, lane) in self.lanes.iter().enumerate() {
            out.push_str(&format!("m{mi:<3} "));
            for cell in lane {
                out.push(cell.map_or('.', glyph));
            }
            out.push('\n');
        }
        out
    }

    /// Fraction of (machine, bucket) cells that are busy.
    pub fn busy_fraction(&self) -> f64 {
        let total: usize = self.lanes.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let busy: usize = self
            .lanes
            .iter()
            .flat_map(|l| l.iter())
            .filter(|c| c.is_some())
            .count();
        busy as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::{units::GB, MachineSpec};
    use tetris_sim::{ClusterConfig, GreedyFifo, Simulation};
    use tetris_workload::gen::{TaskParams, WorkloadBuilder};

    fn run_two_jobs() -> SimOutcome {
        let mut b = WorkloadBuilder::new();
        for (name, arrival) in [("a", 0.0), ("b", 0.0)] {
            let j = b.begin_job(name, None, arrival);
            b.add_stage(j, "s", vec![], 2, |_| TaskParams {
                cores: 2.0,
                mem: 4.0 * GB,
                duration: 10.0,
                cpu_frac: 1.0,
                io_burst: 1.0,
                inputs: vec![],
                output_bytes: 0.0,
                remote_frac: 1.0,
            });
        }
        Simulation::build(
            ClusterConfig::uniform(2, MachineSpec::paper_small()),
            b.finish(),
        )
        .scheduler(GreedyFifo::new())
        .run()
    }

    #[test]
    fn gantt_covers_the_schedule() {
        let o = run_two_jobs();
        let g = Gantt::new(&o, 2, 10);
        assert_eq!(g.lanes.len(), 2);
        assert_eq!(g.lanes[0].len(), 10);
        assert!(g.busy_fraction() > 0.3, "{}", g.busy_fraction());
        let s = g.render();
        assert!(s.contains('A') || s.contains('B'), "{s}");
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn idle_cells_render_as_dots() {
        let o = run_two_jobs();
        // One extra "machine" with no tasks at all.
        let g = Gantt::new(&o, 3, 5);
        assert!(g.lanes[2].iter().all(Option::is_none));
        assert!(g.render().lines().last().unwrap().contains("....."));
    }

    #[test]
    fn busy_fraction_bounds() {
        let o = run_two_jobs();
        let g = Gantt::new(&o, 2, 8);
        assert!(g.busy_fraction() <= 1.0);
        assert!(g.busy_fraction() >= 0.0);
    }
}
