//! Minimal fixed-width text tables shared by the experiment harness.

/// A simple text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatches header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with columns sized to content, right-aligned except the
    /// first column.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                let c = &cells[i];
                let pad = w.saturating_sub(c.chars().count());
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with one decimal and a percent sign.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Format seconds.
pub fn secs(x: f64) -> String {
    format!("{x:.1}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]).row(vec!["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(12.34), "12.3%");
        assert_eq!(secs(5.0), "5.0s");
    }
}
