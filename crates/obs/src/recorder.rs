//! Event sinks.
//!
//! A [`Recorder`] receives `(simulated time, event)` pairs. The engine
//! only constructs events when [`Recorder::enabled`] returns true, so
//! the [`NoopRecorder`] costs one predictable branch per decision and
//! nothing else.

use std::cell::RefCell;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use crate::event::{Event, TraceRecord};

/// An event sink.
pub trait Recorder {
    /// Whether this recorder wants events at all. Callers skip event
    /// construction when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event at simulated time `t` (seconds).
    fn record(&mut self, t: f64, event: &Event);

    /// Flush buffered output (end of run).
    fn flush(&mut self) {}
}

/// Discards everything; [`Recorder::enabled`] is `false`, so events are
/// never even built.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _t: f64, _event: &Event) {}
}

/// Buffered JSON Lines sink: one `{"t": ..., "event": {...}}` object per
/// line, in event order.
pub struct JsonlRecorder<W: Write> {
    out: BufWriter<W>,
    lines: u64,
}

impl JsonlRecorder<std::fs::File> {
    /// Create (truncate) `path` and record into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> JsonlRecorder<W> {
    /// Record into any writer.
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out: BufWriter::new(out),
            lines: 0,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, t: f64, event: &Event) {
        // A trace with a broken pipe under it is useless; fail loudly
        // rather than silently producing a truncated file.
        serde_json::to_writer(
            &mut self.out,
            &TraceRecord {
                t,
                event: event.clone(),
            },
        )
        .expect("trace write failed");
        self.out.write_all(b"\n").expect("trace write failed");
        self.lines += 1;
    }

    fn flush(&mut self) {
        self.out.flush().expect("trace flush failed");
    }
}

impl<W: Write> std::fmt::Debug for JsonlRecorder<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder")
            .field("lines", &self.lines)
            .finish()
    }
}

/// In-memory sink for tests. Cloning shares the underlying buffer, so a
/// test can keep one handle while handing the other to an [`crate::Obs`].
#[derive(Debug, Clone, Default)]
pub struct VecRecorder {
    events: Rc<RefCell<Vec<(f64, Event)>>>,
}

impl VecRecorder {
    /// New shared recorder; clone one handle into the `Obs` and keep the
    /// other to inspect what was recorded.
    pub fn shared() -> Self {
        VecRecorder::default()
    }

    /// Drain and return everything recorded so far.
    pub fn take(&self) -> Vec<(f64, Event)> {
        std::mem::take(&mut self.events.borrow_mut())
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for VecRecorder {
    fn record(&mut self, t: f64, event: &Event) {
        self.events.borrow_mut().push((t, event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_recorder_writes_one_parseable_line_per_event() {
        let mut rec = JsonlRecorder::new(Vec::new());
        rec.record(0.5, &Event::TrackerReport { machines: 2 });
        rec.record(
            1.0,
            &Event::HeartbeatProcessed {
                pending_tasks: 7,
                placements: 3,
                wall_ns: 1234,
            },
        );
        rec.flush();
        assert_eq!(rec.lines(), 2);
        let bytes = rec.out.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let rec: TraceRecord = serde_json::from_str(line).unwrap();
            assert!(rec.t >= 0.0);
        }
    }

    #[test]
    fn vec_recorder_handles_share_a_buffer() {
        let rec = VecRecorder::shared();
        let mut writer = rec.clone();
        writer.record(3.0, &Event::TrackerReport { machines: 1 });
        assert_eq!(rec.len(), 1);
        let events = rec.take();
        assert_eq!(events[0].0, 3.0);
        assert!(rec.is_empty());
    }

    #[test]
    fn noop_recorder_is_disabled() {
        assert!(!NoopRecorder.enabled());
    }
}
