//! Typed scheduling events.
//!
//! Events are serialized one-per-line (JSON Lines) by
//! [`crate::JsonlRecorder`] as `{"t": <seconds>, "event": {"<Kind>":
//! {...}}}` — the externally-tagged enum encoding, chosen because it is
//! trivially filterable with jq (`select(.event.TaskPlaced)`).
//!
//! Ids are plain `usize` indices (job id, task uid, machine id) rather
//! than the simulator's newtypes: `tetris-obs` sits below `tetris-sim`
//! in the dependency graph, and raw indices keep the trace format
//! self-describing without pulling scheduler types into every consumer.

/// Per-decision score breakdown attached to a placement by scoring
/// schedulers (Tetris fills it; slot baselines leave it `None`).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DecisionScores {
    /// Alignment (packing) score of the chosen ⟨task, machine⟩ pair,
    /// after any remote-placement penalty (paper §3.2).
    pub alignment: f64,
    /// The task's multi-resource SRTF rank — the job's remaining-work
    /// score it inherited (paper §3.3.1).
    pub srtf: f64,
    /// Combined score actually maximized: `alignment + ε·srtf_bonus`
    /// (paper §3.3.2, eqn. around "combined score").
    pub combined: f64,
    /// How many machines the scheduler considered in this pass (the
    /// freed-hint set or the whole cluster).
    pub considered_machines: u32,
}

/// A candidate the scheduler scored for a slot but did not pick — the
/// runner-up detail behind a [`Event::TaskPlaced`] decision. Only
/// recorded when verbose tracing is on.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RejectedCandidate {
    /// Owning job id of the losing candidate.
    pub job: usize,
    /// Task uid of the losing candidate (the stage-head task scored).
    pub task: usize,
    /// Alignment (packing) score, for policies that compute one.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub alignment: Option<f64>,
    /// Multi-resource SRTF rank, for policies that compute one.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub srtf: Option<f64>,
    /// The policy's comparable score for the candidate: Tetris's combined
    /// score, or a slot baseline's queue rank (higher = preferred).
    pub score: f64,
}

/// Why a placement happened: the losing candidates plus the incremental
/// bookkeeping (PR 5 ledgers/caches) that produced the decision. Attached
/// to [`Event::TaskPlaced`] only under `--trace-verbose`; default traces
/// omit the field entirely and stay byte-identical.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlacementProvenance {
    /// Per-job candidate caches served warm in this `schedule()` call.
    pub cache_hits: u32,
    /// Caches rebuilt this call (cold start or dirtied by an event).
    pub cache_rebuilds: u32,
    /// True when the incremental state was flushed wholesale (first call,
    /// topology change, or a mark-all-dirty event).
    pub cache_flushed: bool,
    /// Jobs named dirty by scheduler events since the previous call.
    pub dirty_jobs: u32,
    /// Candidates scored on the winning machine for this slot.
    pub candidates: u32,
    /// Considered machines the free-capacity index pruned from this
    /// pass's worklist before scoring (0 on warm passes or for policies
    /// that never consult the index). `serde(default)` keeps pre-index
    /// traces readable.
    #[serde(default)]
    pub index_pruned: u32,
    /// Machines on this pass's worklist after index pruning.
    #[serde(default)]
    pub index_considered: u32,
    /// Top-k losing candidates, best first by the policy's own ordering.
    pub rejected: Vec<RejectedCandidate>,
}

/// One observable scheduling occurrence.
///
/// Variants mirror the lifecycle the paper's evaluation reasons about:
/// arrivals, placements (with score breakdowns), retries, heartbeat
/// passes (Table 8), tracker reports (§4.1) and token-bucket throttling
/// (§4.2).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Event {
    /// A job arrived and its root stages became runnable.
    JobArrived {
        /// Job id.
        job: usize,
        /// Job name from the workload.
        name: String,
        /// Total tasks across all stages.
        tasks: usize,
    },
    /// The engine applied a placement.
    TaskPlaced {
        /// Owning job id.
        job: usize,
        /// Task uid.
        task: usize,
        /// Host machine id.
        machine: usize,
        /// Alignment score, if the policy reported one.
        alignment_score: Option<f64>,
        /// SRTF rank, if reported.
        srtf_score: Option<f64>,
        /// Combined score, if reported.
        combined_score: Option<f64>,
        /// Machines considered in the pass, if reported.
        considered_machines: Option<u32>,
        /// Decision provenance (rejected candidates, cache/dirty-set
        /// bookkeeping). Only present under `--trace-verbose`; skipped
        /// on the wire when absent so default traces are byte-identical
        /// to pre-provenance versions.
        #[serde(skip_serializing_if = "Option::is_none", default)]
        provenance: Option<Box<PlacementProvenance>>,
        /// Priority class of the owning job. Present only when the job
        /// carries a non-default priority, so all-batch traces stay
        /// byte-identical to pre-priority versions.
        #[serde(skip_serializing_if = "Option::is_none", default)]
        priority: Option<u8>,
    },
    /// A task finished for good.
    TaskCompleted {
        /// Owning job id.
        job: usize,
        /// Task uid.
        task: usize,
        /// Host machine id of the final attempt.
        machine: usize,
        /// Attempts used (>1 ⇒ earlier failures).
        attempts: u32,
    },
    /// A running task lost its slot and went back to the pending queue
    /// (in the current engine: the failure model re-queued the attempt).
    TaskPreempted {
        /// Owning job id.
        job: usize,
        /// Task uid.
        task: usize,
        /// Machine the attempt was running on.
        machine: usize,
        /// Why the slot was lost (`"failure_retry"`, `"machine_crash"`,
        /// `"priority_preemption"`). `Cow` so emitters can pass interned
        /// `&'static str` tags without allocating; deserialization
        /// produces the owned form.
        reason: std::borrow::Cow<'static, str>,
        /// Priority class of the *victim's* job. Present only for
        /// priority preemptions; failure/crash kills skip it on the
        /// wire, keeping fault traces byte-identical to earlier versions.
        #[serde(skip_serializing_if = "Option::is_none", default)]
        priority: Option<u8>,
        /// Task uid of the higher-priority task whose placement evicted
        /// this one (priority preemptions only).
        #[serde(skip_serializing_if = "Option::is_none", default)]
        preempted_by: Option<usize>,
    },
    /// One full "resources freed → pick tasks" pass completed — the
    /// continuous version of the paper's Table-8 heartbeat measurement.
    HeartbeatProcessed {
        /// Pending runnable tasks when the pass began.
        pending_tasks: usize,
        /// Placements applied during the pass.
        placements: u64,
        /// Wall-clock time of the pass in nanoseconds.
        wall_ns: u64,
    },
    /// A token bucket queued a call instead of admitting it (§4.2).
    TokenBucketThrottled {
        /// Tokens (≙ bytes) the call requested.
        requested: f64,
        /// Simulated seconds the call must wait for tokens.
        wait_secs: f64,
    },
    /// The resource tracker delivered a usage report round (§4.1).
    TrackerReport {
        /// Machines that reported.
        machines: usize,
    },
    /// Fault injection: a machine crashed, killing resident attempts.
    MachineDown {
        /// Machine id.
        machine: usize,
        /// Task attempts killed by the crash.
        killed: usize,
        /// Of those, attempts that will run again.
        requeued: usize,
        /// Of those, tasks permanently abandoned (attempt cap reached).
        abandoned: usize,
        /// Seconds of task progress lost.
        lost_task_seconds: f64,
        /// Blocks re-replicated off the dead machine.
        evacuations: usize,
    },
    /// Fault injection: a crashed machine recovered.
    MachineUp {
        /// Machine id.
        machine: usize,
    },
    /// Fault injection: a straggler window began on a machine.
    SlowdownStart {
        /// Machine id.
        machine: usize,
        /// Effective disk/net bandwidth factor in (0,1).
        factor: f64,
    },
    /// Fault injection: a straggler window ended.
    SlowdownEnd {
        /// Machine id.
        machine: usize,
    },
    /// Fault injection: a machine's tracker went stale ahead of a crash.
    TrackerFlaky {
        /// Machine id.
        machine: usize,
    },
    /// The tracker's suspicion score crossed the suspect threshold.
    MachineSuspected {
        /// Machine id.
        machine: usize,
    },
    /// A previously suspect machine's reports became trustworthy again.
    MachineCleared {
        /// Machine id.
        machine: usize,
    },
    /// A task was permanently abandoned after exhausting its attempts.
    TaskAbandoned {
        /// Owning job id.
        job: usize,
        /// Task uid.
        task: usize,
        /// Attempts used.
        attempts: u32,
    },
}

impl Event {
    /// Short kind tag (the enum variant name as it appears on the wire).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::JobArrived { .. } => "JobArrived",
            Event::TaskPlaced { .. } => "TaskPlaced",
            Event::TaskCompleted { .. } => "TaskCompleted",
            Event::TaskPreempted { .. } => "TaskPreempted",
            Event::HeartbeatProcessed { .. } => "HeartbeatProcessed",
            Event::TokenBucketThrottled { .. } => "TokenBucketThrottled",
            Event::TrackerReport { .. } => "TrackerReport",
            Event::MachineDown { .. } => "MachineDown",
            Event::MachineUp { .. } => "MachineUp",
            Event::SlowdownStart { .. } => "SlowdownStart",
            Event::SlowdownEnd { .. } => "SlowdownEnd",
            Event::TrackerFlaky { .. } => "TrackerFlaky",
            Event::MachineSuspected { .. } => "MachineSuspected",
            Event::MachineCleared { .. } => "MachineCleared",
            Event::TaskAbandoned { .. } => "TaskAbandoned",
        }
    }
}

/// One trace line: simulated timestamp plus event. This is the JSONL
/// wire format; [`crate::JsonlRecorder`] writes one per line and tests
/// parse lines back into it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceRecord {
    /// Simulated time in seconds.
    pub t: f64,
    /// The event.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrips_through_json() {
        let e = Event::TaskPlaced {
            job: 3,
            task: 17,
            machine: 2,
            alignment_score: Some(0.75),
            srtf_score: Some(1.25),
            combined_score: Some(0.875),
            considered_machines: Some(20),
            provenance: None,
            priority: None,
        };
        let line = serde_json::to_string(&TraceRecord {
            t: 12.5,
            event: e.clone(),
        })
        .unwrap();
        assert!(line.contains("\"TaskPlaced\""), "{line}");
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back.event, e);
        assert_eq!(back.t, 12.5);
    }

    #[test]
    fn baseline_placement_has_null_scores() {
        let e = Event::TaskPlaced {
            job: 0,
            task: 0,
            machine: 0,
            alignment_score: None,
            srtf_score: None,
            combined_score: None,
            considered_machines: None,
            provenance: None,
            priority: None,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"alignment_score\":null"), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    /// Byte-identity contract for default traces: a `TaskPlaced` without
    /// provenance must serialize to exactly the pre-provenance wire form
    /// (no `provenance` key, explicit `null` score fields). check.sh
    /// additionally greps live traces; this pins the exact bytes.
    #[test]
    fn default_task_placed_wire_bytes_are_unchanged() {
        let e = Event::TaskPlaced {
            job: 3,
            task: 17,
            machine: 2,
            alignment_score: Some(0.75),
            srtf_score: Some(1.25),
            combined_score: Some(0.875),
            considered_machines: Some(20),
            provenance: None,
            priority: None,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(
            json,
            "{\"TaskPlaced\":{\"job\":3,\"task\":17,\"machine\":2,\
             \"alignment_score\":0.75,\"srtf_score\":1.25,\
             \"combined_score\":0.875,\"considered_machines\":20}}"
        );
        // Old traces (without the field) still deserialize.
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn verbose_task_placed_roundtrips_with_provenance() {
        let e = Event::TaskPlaced {
            job: 1,
            task: 4,
            machine: 0,
            alignment_score: Some(0.5),
            srtf_score: Some(2.0),
            combined_score: Some(0.6),
            considered_machines: Some(8),
            provenance: Some(Box::new(PlacementProvenance {
                cache_hits: 5,
                cache_rebuilds: 2,
                cache_flushed: false,
                dirty_jobs: 2,
                candidates: 7,
                index_pruned: 3,
                index_considered: 5,
                rejected: vec![RejectedCandidate {
                    job: 2,
                    task: 9,
                    alignment: Some(0.4),
                    srtf: Some(3.0),
                    score: 0.45,
                }],
            })),
            priority: None,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"provenance\""), "{json}");
        assert!(json.contains("\"rejected\""), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn kind_tags_match_wire_tags() {
        let e = Event::TrackerReport { machines: 5 };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.starts_with(&format!("{{\"{}\"", e.kind())), "{json}");
    }
}
