//! Minimal plain-text summary rendering for CLI tools.
//!
//! `tetris-metrics::table` renders the paper's report tables; this module
//! covers the humbler case — a tool that used to `println!` a handful of
//! stats and now wants them aligned and greppable without pulling in the
//! metrics crate (which would cycle: metrics → workload → … → obs).

use crate::histogram::Histogram;
use crate::registry::MetricsRegistry;

/// An aligned `key: value` block under a `== title ==` header.
#[derive(Debug, Default)]
pub struct Summary {
    title: String,
    rows: Vec<(String, String)>,
}

impl Summary {
    /// New summary block titled `title`.
    pub fn new(title: impl Into<String>) -> Self {
        Summary {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Append one `key: value` row.
    pub fn row(&mut self, key: impl Into<String>, value: impl std::fmt::Display) -> &mut Self {
        self.rows.push((key.into(), value.to_string()));
        self
    }

    /// Append a row only when `value` is present.
    pub fn row_opt(
        &mut self,
        key: impl Into<String>,
        value: Option<impl std::fmt::Display>,
    ) -> &mut Self {
        if let Some(v) = value {
            self.row(key, v);
        }
        self
    }

    /// Render with keys left-padded to a common width.
    pub fn render(&self) -> String {
        let width = self.rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = format!("== {} ==\n", self.title);
        for (k, v) in &self.rows {
            out.push_str(&format!("  {k:width$}  {v}\n"));
        }
        out
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// One-line `count/p50/p90/p99/max` rendering of a histogram, with values
/// shown in a human unit (`scale` divides raw samples; e.g. `1e3` for
/// ns → µs) and `unit` appended.
pub fn histogram_line(h: &Histogram, scale: f64, unit: &str) -> String {
    let fmt = |v: Option<u64>| match v {
        Some(v) => format!("{:.1}{unit}", v as f64 / scale),
        None => "-".to_string(),
    };
    format!(
        "n={} p50={} p90={} p99={} max={}",
        h.count(),
        fmt(h.quantile(0.5)),
        fmt(h.quantile(0.9)),
        fmt(h.quantile(0.99)),
        fmt(h.max()),
    )
}

/// Render every metric in `m` as one summary block: counters first, then
/// gauges, then histograms via [`histogram_line`] (raw units).
pub fn render_metrics(title: &str, m: &MetricsRegistry) -> String {
    let snap = m.snapshot();
    let mut s = Summary::new(title);
    for (k, v) in &snap.counters {
        s.row(k.clone(), v);
    }
    for (k, v) in &snap.gauges {
        s.row(k.clone(), format!("{v:.3}"));
    }
    for name in snap.histograms.keys() {
        if let Some(h) = m.histogram(name) {
            s.row(name.clone(), histogram_line(h, 1.0, ""));
        }
    }
    s.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_aligns_keys() {
        let mut s = Summary::new("test");
        s.row("a", 1).row("longer_key", "x");
        let out = s.render();
        assert!(out.starts_with("== test ==\n"), "{out}");
        assert!(out.contains("  a           1\n"), "{out:?}");
        assert!(out.contains("  longer_key  x\n"), "{out:?}");
    }

    #[test]
    fn histogram_line_scales_units() {
        let mut h = Histogram::new();
        h.record(2_000);
        let line = histogram_line(&h, 1e3, "us");
        assert!(line.contains("n=1"), "{line}");
        assert!(line.contains("p50=2.0us"), "{line}");
    }

    #[test]
    fn render_metrics_includes_all_kinds() {
        let mut m = MetricsRegistry::new();
        m.counter_add("placements", 3);
        m.gauge_set("pending_tasks", 2.0);
        m.observe("heartbeat_ns", 500);
        let out = render_metrics("run", &m);
        assert!(out.contains("placements"), "{out}");
        assert!(out.contains("pending_tasks"), "{out}");
        assert!(out.contains("heartbeat_ns"), "{out}");
    }
}
