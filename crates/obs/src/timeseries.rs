//! Cluster telemetry time-series.
//!
//! The paper argues through cluster-state curves — utilization,
//! fragmentation and pending backlog over time (Figs 4–7) — so a run
//! artifact must let those curves be regenerated. This module defines
//! the sample schema ([`TelemetrySample`]), a deterministic collector
//! ([`TimeSeries`]) that streams samples as JSON Lines alongside the
//! decision trace, and the summary/CSV rendering used by
//! `trace-tool report`.
//!
//! Samples are produced by the sim engine once per heartbeat (the
//! "resources freed → pick tasks" pass), after scheduling, so each point
//! describes the cluster state the next decision will see. Sampling is
//! driven entirely by simulated time and ledger state — no wall clocks,
//! no RNG — so the stream is byte-identical across repeated runs.
//!
//! `tetris-obs` sits below the resource model in the dependency graph,
//! so per-resource values are plain named `f64` fields rather than a
//! `ResourceVec`: the JSONL stays self-describing
//! (`jq '{t, cpu: .usage.cpu}'`) without pulling scheduler types into
//! every consumer.

use std::io::Write;

/// Per-resource cluster fractions (of total up-machine capacity), one
/// field per dimension of the six-resource model.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ResourceUtil {
    /// CPU cores.
    pub cpu: f64,
    /// Memory bytes.
    pub mem: f64,
    /// Disk read bandwidth.
    pub disk_read: f64,
    /// Disk write bandwidth.
    pub disk_write: f64,
    /// Network ingress bandwidth.
    pub net_in: f64,
    /// Network egress bandwidth.
    pub net_out: f64,
}

impl ResourceUtil {
    /// The worst (largest) dimension — the packing bottleneck.
    pub fn max(&self) -> f64 {
        [
            self.cpu,
            self.mem,
            self.disk_read,
            self.disk_write,
            self.net_in,
            self.net_out,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

/// One telemetry point: the cluster as seen right after a heartbeat's
/// scheduling pass.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TelemetrySample {
    /// Simulated time in seconds.
    pub t: f64,
    /// Allocation-ledger fraction of total capacity, per resource.
    pub alloc: ResourceUtil,
    /// Actual usage-rate fraction of total capacity, per resource.
    pub usage: ResourceUtil,
    /// Fragmentation score in [0,1]: the fraction of pending work that is
    /// *stranded* — its stage-representative demand fits in the cluster's
    /// aggregate free capacity but on no single up machine. 0 when the
    /// backlog is empty or every pending stage has a feasible host.
    pub fragmentation: f64,
    /// Instantaneous packing efficiency vs the one-big-bin `upper_bound`
    /// oracle relaxation: allocated ÷ ideally-allocatable on the dominant
    /// dimension (1.0 when there is no work to place).
    pub packing_efficiency: f64,
    /// Runnable tasks waiting for a slot.
    pub pending_tasks: usize,
    /// Task attempts currently running.
    pub running_tasks: usize,
    /// Tasks permanently abandoned so far (attempt cap).
    pub abandoned_tasks: u64,
    /// Up machines whose tracker suspicion is at/over the suspect
    /// threshold.
    pub suspect_machines: usize,
    /// Machines currently crashed.
    pub down_machines: usize,
}

/// Deterministic sample collector: keeps every sample in memory (for the
/// metrics-JSON snapshot) and optionally streams each one as a JSONL
/// line the moment it is recorded.
#[derive(Default)]
pub struct TimeSeries {
    samples: Vec<TelemetrySample>,
    sink: Option<Box<dyn Write>>,
}

impl TimeSeries {
    /// In-memory collector (no stream).
    pub fn in_memory() -> Self {
        TimeSeries::default()
    }

    /// Collector that additionally writes one JSON line per sample into
    /// `sink`.
    pub fn streaming(sink: Box<dyn Write>) -> Self {
        TimeSeries {
            samples: Vec::new(),
            sink: Some(sink),
        }
    }

    /// Record one sample (appends to memory; writes a JSONL line if
    /// streaming).
    pub fn record(&mut self, sample: TelemetrySample) {
        if let Some(w) = self.sink.as_mut() {
            // Serialization of plain floats/ints cannot fail; I/O errors
            // surface on flush.
            let line = serde_json::to_string(&sample).expect("serialize telemetry sample");
            let _ = writeln!(w, "{line}");
        }
        self.samples.push(sample);
    }

    /// Samples recorded so far, in time order.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Flush the stream sink, if any.
    pub fn flush(&mut self) {
        if let Some(w) = self.sink.as_mut() {
            let _ = w.flush();
        }
    }

    /// Consume the collector, returning the collected samples.
    pub fn into_samples(mut self) -> Vec<TelemetrySample> {
        self.flush();
        self.samples
    }
}

impl std::fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeries")
            .field("samples", &self.samples.len())
            .field("streaming", &self.sink.is_some())
            .finish()
    }
}

/// CSV header matching [`csv_row`], used by `trace-tool report`.
pub const CSV_HEADER: &str = "t,cpu_alloc,mem_alloc,max_alloc,cpu_usage,mem_usage,max_usage,\
     fragmentation,packing_efficiency,pending,running,abandoned,suspect,down";

/// Render one sample as a CSV row (fixed precision so output is
/// deterministic and diff-stable).
pub fn csv_row(s: &TelemetrySample) -> String {
    format!(
        "{:.2},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{}",
        s.t,
        s.alloc.cpu,
        s.alloc.mem,
        s.alloc.max(),
        s.usage.cpu,
        s.usage.mem,
        s.usage.max(),
        s.fragmentation,
        s.packing_efficiency,
        s.pending_tasks,
        s.running_tasks,
        s.abandoned_tasks,
        s.suspect_machines,
        s.down_machines
    )
}

/// Min/mean/max of one column over a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Smallest value seen.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest value seen.
    pub max: f64,
}

impl ColumnStats {
    fn compute(values: impl Iterator<Item = f64>) -> ColumnStats {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            n += 1;
        }
        if n == 0 {
            ColumnStats {
                min: 0.0,
                mean: 0.0,
                max: 0.0,
            }
        } else {
            ColumnStats {
                min,
                mean: sum / n as f64,
                max,
            }
        }
    }
}

/// Summary statistics over a telemetry series — the numbers a run report
/// leads with before the curve itself.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSummary {
    /// Number of samples.
    pub samples: usize,
    /// Time span covered (first..last sample).
    pub span: (f64, f64),
    /// Worst-dimension allocation fraction.
    pub max_alloc: ColumnStats,
    /// Worst-dimension usage fraction.
    pub max_usage: ColumnStats,
    /// Fragmentation score.
    pub fragmentation: ColumnStats,
    /// Packing efficiency vs the aggregate-bin oracle.
    pub packing_efficiency: ColumnStats,
    /// Pending backlog.
    pub pending: ColumnStats,
    /// Suspect-machine count.
    pub suspect: ColumnStats,
    /// Down-machine count.
    pub down: ColumnStats,
}

impl SeriesSummary {
    /// Compute summary statistics over `samples` (zeros when empty).
    pub fn compute(samples: &[TelemetrySample]) -> SeriesSummary {
        let col = |f: &dyn Fn(&TelemetrySample) -> f64| ColumnStats::compute(samples.iter().map(f));
        SeriesSummary {
            samples: samples.len(),
            span: match (samples.first(), samples.last()) {
                (Some(a), Some(b)) => (a.t, b.t),
                _ => (0.0, 0.0),
            },
            max_alloc: col(&|s| s.alloc.max()),
            max_usage: col(&|s| s.usage.max()),
            fragmentation: col(&|s| s.fragmentation),
            packing_efficiency: col(&|s| s.packing_efficiency),
            pending: col(&|s| s.pending_tasks as f64),
            suspect: col(&|s| s.suspect_machines as f64),
            down: col(&|s| s.down_machines as f64),
        }
    }

    /// Deterministic plain-text rendering (one `name min/mean/max` line
    /// per column).
    pub fn render(&self) -> String {
        let line = |name: &str, c: &ColumnStats| {
            format!(
                "  {name:<20} min {:>8.4}  mean {:>8.4}  max {:>8.4}\n",
                c.min, c.mean, c.max
            )
        };
        let mut out = format!(
            "samples {}  span {:.2}s..{:.2}s\n",
            self.samples, self.span.0, self.span.1
        );
        out.push_str(&line("max_alloc", &self.max_alloc));
        out.push_str(&line("max_usage", &self.max_usage));
        out.push_str(&line("fragmentation", &self.fragmentation));
        out.push_str(&line("packing_efficiency", &self.packing_efficiency));
        out.push_str(&line("pending", &self.pending));
        out.push_str(&line("suspect_machines", &self.suspect));
        out.push_str(&line("down_machines", &self.down));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, cpu: f64, pending: usize) -> TelemetrySample {
        TelemetrySample {
            t,
            alloc: ResourceUtil {
                cpu,
                ..ResourceUtil::default()
            },
            usage: ResourceUtil::default(),
            fragmentation: 0.25,
            packing_efficiency: 0.9,
            pending_tasks: pending,
            running_tasks: 3,
            abandoned_tasks: 0,
            suspect_machines: 1,
            down_machines: 0,
        }
    }

    #[test]
    fn sample_roundtrips_through_json() {
        let s = sample(10.0, 0.5, 7);
        let line = serde_json::to_string(&s).unwrap();
        assert!(line.contains("\"fragmentation\":0.25"), "{line}");
        let back: TelemetrySample = serde_json::from_str(&line).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn streaming_collector_writes_one_line_per_sample() {
        let buf: Vec<u8> = Vec::new();
        let mut ts = TimeSeries::streaming(Box::new(buf));
        ts.record(sample(1.0, 0.1, 2));
        ts.record(sample(2.0, 0.2, 1));
        assert_eq!(ts.len(), 2);
        // The sink is boxed away; verify via a shared buffer instead.
        let shared = std::sync::Arc::new(std::sync::Mutex::new(Vec::<u8>::new()));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut ts = TimeSeries::streaming(Box::new(Shared(shared.clone())));
        ts.record(sample(1.0, 0.1, 2));
        ts.record(sample(2.0, 0.2, 1));
        ts.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            let s: TelemetrySample = serde_json::from_str(l).unwrap();
            assert!(s.t > 0.0);
        }
    }

    #[test]
    fn summary_and_csv_are_deterministic() {
        let samples = vec![sample(0.0, 0.2, 5), sample(20.0, 0.8, 1)];
        let sum = SeriesSummary::compute(&samples);
        assert_eq!(sum.samples, 2);
        assert_eq!(sum.span, (0.0, 20.0));
        assert_eq!(sum.max_alloc.max, 0.8);
        assert!((sum.max_alloc.mean - 0.5).abs() < 1e-12);
        assert_eq!(sum.pending.min, 1.0);
        assert_eq!(sum.render(), SeriesSummary::compute(&samples).render());
        let row = csv_row(&samples[0]);
        assert_eq!(
            row.split(',').count(),
            CSV_HEADER.split(',').count(),
            "{row}"
        );
        assert!(row.starts_with("0.00,0.2000,"), "{row}");
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let sum = SeriesSummary::compute(&[]);
        assert_eq!(sum.samples, 0);
        assert_eq!(sum.span, (0.0, 0.0));
        assert_eq!(sum.max_alloc.max, 0.0);
        assert_eq!(sum.fragmentation.mean, 0.0);
    }
}
