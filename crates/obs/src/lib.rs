//! # tetris-obs
//!
//! Runtime observability for the Tetris reproduction — the layer that
//! turns scheduler behaviour from anecdotes into data:
//!
//! * [`event`] — typed scheduling events ([`Event`]) with serde support,
//!   written as JSON Lines by a [`Recorder`];
//! * [`recorder`] — the [`Recorder`] trait plus sinks: [`NoopRecorder`]
//!   (compiles to a dead branch on the hot path), [`JsonlRecorder`]
//!   (buffered file sink), [`VecRecorder`] (in-memory, for tests);
//! * [`registry`] — [`MetricsRegistry`]: counters, gauges, and
//!   fixed-bucket latency [`Histogram`]s keyed by static names,
//!   snapshotable to JSON;
//! * [`histogram`] — power-of-two-bucket histograms with p50/p90/p99/max;
//! * [`timeseries`] — per-heartbeat cluster telemetry samples
//!   ([`TelemetrySample`]: utilization, fragmentation, backlog, suspect
//!   machines, packing efficiency) streamed as JSONL and rendered by
//!   `trace-tool report`;
//! * [`summary`] — small plain-text key/value rendering for CLI summaries.
//!
//! The paper's evaluation leans on exactly this kind of instrumentation:
//! Table 8 (heartbeat processing latency), Figures 5/6 (utilization
//! timelines) and §5.3 ("who got slowed and why") all require seeing
//! *individual decisions*, not just final outcomes.
//!
//! Everything funnels through an [`Obs`] context owned by the caller and
//! passed into the simulator by mutable reference. Observability must
//! never perturb the simulation: events carry no entropy back into the
//! engine, and `SimOutcome`s are byte-identical with or without a
//! recorder attached (enforced by an integration test in `tetris-sim`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod summary;
pub mod timeseries;

pub use event::{DecisionScores, Event, PlacementProvenance, RejectedCandidate};
pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::{JsonlRecorder, NoopRecorder, Recorder, VecRecorder};
pub use registry::{MetricsRegistry, MetricsSnapshot};
pub use timeseries::{TelemetrySample, TimeSeries};

/// Well-known metric names, shared across crates so snapshots stay
/// consistent and greppable.
pub mod names {
    /// Wall time of one full "resources freed → pick tasks" scheduling
    /// pass in the engine (histogram, nanoseconds). The continuous,
    /// per-run version of the paper's Table-8 heartbeat measurement.
    pub const HEARTBEAT_NS: &str = "heartbeat_ns";
    /// Wall time of a single `SchedulerPolicy::schedule` invocation
    /// (histogram, nanoseconds); a heartbeat may invoke several.
    pub const SCHEDULE_NS: &str = "schedule_ns";
    /// Tasks placed (counter).
    pub const PLACEMENTS: &str = "placements";
    /// Assignments the engine rejected as invalid (counter).
    pub const REJECTED_ASSIGNMENTS: &str = "rejected_assignments";
    /// Simulation events processed (counter).
    pub const ENGINE_EVENTS: &str = "engine_events";
    /// `SchedulerEvent`s delivered to the policy's `on_event` hook
    /// (counter) — nonzero proves the incremental path is exercised.
    pub const SCHED_EVENTS: &str = "scheduler_events";
    /// Task attempts re-queued by the failure model (counter).
    pub const TASK_RETRIES: &str = "task_retries";
    /// Running tasks evicted by priority preemption (counter;
    /// zero-gated — preemption-free runs add no name).
    pub const PREEMPTIONS: &str = "sched_preemptions_total";
    /// Tracker report rounds processed (counter).
    pub const TRACKER_REPORTS: &str = "tracker_reports";
    /// Pending runnable tasks observed at each heartbeat (gauge: latest).
    pub const PENDING_TASKS: &str = "pending_tasks";
    /// Cluster-wide tracker-reported usage fraction, worst dimension
    /// (gauge: latest).
    pub const TRACKER_USAGE_FRAC: &str = "tracker_usage_frac";
    /// Calls queued by a token bucket (counter).
    pub const TOKEN_THROTTLED: &str = "token_bucket_throttled";
    /// Queueing delay imposed by token buckets (histogram, simulated
    /// microseconds).
    pub const TOKEN_WAIT_US: &str = "token_wait_us";

    // ---------------- faults family (fault injection) ----------------

    /// Machine crash events injected by the fault plan (counter).
    pub const FAULT_CRASHES: &str = "fault_crashes";
    /// Machine recoveries (counter).
    pub const FAULT_RECOVERIES: &str = "fault_recoveries";
    /// Whole seconds of task progress lost to crashes (counter).
    pub const FAULT_LOST_TASK_SECONDS: &str = "fault_lost_task_seconds";
    /// Task attempts killed by crashes that will retry (counter).
    pub const FAULT_RETRIES: &str = "fault_retries";
    /// Tasks permanently abandoned at the attempt cap (counter).
    pub const FAULT_ABANDONED: &str = "fault_abandoned";
    /// Crash-lost attempts that waited out a restart backoff (counter).
    pub const FAULT_BACKOFF_WAITS: &str = "fault_backoff_waits";
    /// Straggler slowdown windows entered (counter).
    pub const FAULT_SLOWDOWNS: &str = "fault_slowdowns";
    /// Trackers that went stale ahead of an imminent crash.
    pub const FAULT_FLAKES: &str = "fault_flakes";
    /// Machines newly marked suspect by the tracker (counter).
    pub const FAULT_SUSPECTED: &str = "fault_suspected";
    /// Suspect machines cleared after good reports (counter).
    pub const FAULT_CLEARED: &str = "fault_cleared";
    /// Blocks re-replicated off crashed machines (counter).
    pub const FAULT_EVACUATIONS: &str = "fault_evacuations";
    /// Indexed machine queries served by the free-capacity index
    /// (counter; absent when the index never answered a query).
    pub const INDEX_QUERIES: &str = "machine_index_queries";
    /// Considered machines pruned from candidate sets by the index
    /// (counter).
    pub const INDEX_PRUNED: &str = "machine_index_pruned";
    /// Machines returned by indexed queries (counter).
    pub const INDEX_RETURNED: &str = "machine_index_returned";
    /// Availability evaluations performed by indexed envelope descents
    /// (counter; linear envelopes would cost one per considered machine).
    pub const INDEX_ENV_VISITS: &str = "machine_index_env_visits";
    /// Sharded cold-pass scoring batches dispatched to the worker pool
    /// (counter; absent unless a policy runs with `score_shards > 1`).
    pub const SHARD_BATCHES: &str = "shard_batches";
    /// Candidate×machine scoring items fanned out across shards (counter).
    pub const SHARD_ITEMS: &str = "shard_items";

    // ------- omega family (sharded multi-scheduler, sim::sharded) -------

    /// Proposals rejected at the sharded commit stage because a racing
    /// shard already claimed the capacity (counter; absent unless a
    /// sharded scheduler ran with more than one shard and actually
    /// conflicted).
    pub const SCHED_CONFLICTS: &str = "scheduling_conflicts_total";
    /// Intra-heartbeat retry rounds run by losing shards (counter).
    pub const CONFLICT_RETRY_ROUNDS: &str = "conflict_retry_rounds";
    /// Most retry rounds any single heartbeat needed (gauge: peak).
    pub const CONFLICT_RETRY_PEAK: &str = "conflict_retry_rounds_peak";
    /// Wall time of one shard's `schedule()` pass within a sharded
    /// heartbeat (histogram, microseconds; one sample per shard per
    /// fan-out round).
    pub const SHARD_HEARTBEAT_US: &str = "heartbeat_shard_us";

    // ------- recovery family (journal + crash recovery, sim::recovery) -------

    /// Records appended to the write-ahead decision journal (counter;
    /// absent unless the run journaled).
    pub const JOURNAL_RECORDS: &str = "journal_records_total";
    /// Bytes appended to the write-ahead decision journal (counter).
    pub const JOURNAL_BYTES: &str = "journal_bytes_total";
    /// State checkpoints written into the journal, including the genesis
    /// checkpoint (counter).
    pub const CHECKPOINTS: &str = "checkpoints_total";
    /// Scheduling batches re-applied from the journal during crash
    /// recovery (counter; absent unless a recovery ran).
    pub const RECOVERY_REPLAYED_BATCHES: &str = "recovery_replayed_batches";
    /// Journaled placements re-applied during crash recovery (counter).
    pub const RECOVERY_REPLAYED_PLACEMENTS: &str = "recovery_replayed_placements";
    /// Torn/truncated trailing journal records discarded by the lenient
    /// recovery scan (counter; absent when the tail was clean).
    pub const RECOVERY_DISCARDED_RECORDS: &str = "recovery_discarded_records";
    /// Wall time to restore the checkpoint and replay the journal tail
    /// back to the crash frontier (histogram, microseconds).
    pub const RECOVERY_LATENCY_US: &str = "recovery_latency_us";
}

/// The observability context: one recorder plus one metrics registry,
/// owned by the caller and threaded through a run by `&mut`.
pub struct Obs {
    recorder: Box<dyn Recorder>,
    /// Counters, gauges and histograms accumulated during the run.
    pub metrics: MetricsRegistry,
    verbose: bool,
    timeseries: Option<TimeSeries>,
}

impl Obs {
    /// Context with no event sink. Metrics still accumulate; event
    /// construction is skipped entirely (the [`Obs::emit`] closure is
    /// never called).
    pub fn noop() -> Self {
        Obs {
            recorder: Box::new(NoopRecorder),
            metrics: MetricsRegistry::new(),
            verbose: false,
            timeseries: None,
        }
    }

    /// Context recording events into `recorder`.
    pub fn with_recorder(recorder: Box<dyn Recorder>) -> Self {
        Obs {
            recorder,
            metrics: MetricsRegistry::new(),
            verbose: false,
            timeseries: None,
        }
    }

    /// Request verbose traces: emitters attach decision provenance
    /// (rejected candidates, cache bookkeeping) to placements. Has no
    /// effect unless a recorder is attached — default traces stay
    /// byte-identical.
    pub fn set_verbose(&mut self, on: bool) {
        self.verbose = on;
    }

    /// Whether emitters should attach decision provenance: verbose was
    /// requested *and* a recorder is actually consuming events.
    #[inline]
    pub fn verbose(&self) -> bool {
        self.verbose && self.recorder.enabled()
    }

    /// Attach a telemetry time-series collector; the engine samples the
    /// cluster once per heartbeat into it.
    pub fn set_timeseries(&mut self, ts: TimeSeries) {
        self.timeseries = Some(ts);
    }

    /// Whether a time-series collector is attached (hot paths gate the
    /// sample computation on this).
    #[inline]
    pub fn sampling(&self) -> bool {
        self.timeseries.is_some()
    }

    /// Record one telemetry sample (no-op when no collector is attached).
    #[inline]
    pub fn record_sample(&mut self, sample: TelemetrySample) {
        if let Some(ts) = self.timeseries.as_mut() {
            ts.record(sample);
        }
    }

    /// The collected telemetry samples so far (empty when not sampling).
    pub fn timeseries_samples(&self) -> &[TelemetrySample] {
        self.timeseries.as_ref().map_or(&[], |ts| ts.samples())
    }

    /// Detach and return the time-series collector, if any.
    pub fn take_timeseries(&mut self) -> Option<TimeSeries> {
        self.timeseries.take()
    }

    /// Whether the attached recorder wants events. Hot paths check this
    /// (or rely on [`Obs::emit`]'s internal check) so event construction
    /// costs nothing when tracing is off.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.recorder.enabled()
    }

    /// Record an event at simulated time `t` (seconds). `build` runs only
    /// if the recorder is enabled.
    #[inline]
    pub fn emit(&mut self, t: f64, build: impl FnOnce() -> Event) {
        if self.recorder.enabled() {
            self.recorder.record(t, &build());
        }
    }

    /// Flush the recorder and the time-series stream (e.g. at end of
    /// run).
    pub fn flush(&mut self) {
        self.recorder.flush();
        if let Some(ts) = self.timeseries.as_mut() {
            ts.flush();
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::noop()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("tracing", &self.tracing())
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_emit_never_builds_event() {
        let mut obs = Obs::noop();
        let mut built = false;
        obs.emit(0.0, || {
            built = true;
            Event::TrackerReport { machines: 0 }
        });
        assert!(!built, "noop recorder must not construct events");
    }

    #[test]
    fn vec_recorder_collects_events() {
        let rec = VecRecorder::shared();
        let mut obs = Obs::with_recorder(Box::new(rec.clone()));
        obs.emit(1.5, || Event::TrackerReport { machines: 4 });
        obs.emit(2.0, || Event::JobArrived {
            job: 0,
            name: "j0".into(),
            tasks: 3,
        });
        let events = rec.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, 1.5);
        assert!(matches!(events[0].1, Event::TrackerReport { machines: 4 }));
    }
}
