//! Metrics registry: counters, gauges and histograms keyed by static
//! names.
//!
//! Keys are `&'static str` (see [`crate::names`]) so lookup never
//! allocates and typos surface as obviously-dead snapshot entries. The
//! registry is deliberately not thread-safe: the simulator is
//! single-threaded and an `Obs` is threaded by `&mut`. Parallel harnesses
//! give each worker its own registry and fold them together afterwards
//! with [`MetricsRegistry::merge`].

use std::collections::BTreeMap;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::timeseries::TelemetrySample;

/// Counters, gauges and latency histograms for one run.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `delta` to counter `name` (creating it at 0).
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increment counter `name` by one.
    #[inline]
    pub fn counter_inc(&mut self, name: &'static str) {
        self.counter_add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value` (last write wins).
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `value` into histogram `name` (creating it empty).
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold `other` into this registry: counters add, histograms merge
    /// bucket-wise (see [`Histogram::merge`]), and gauges take `other`'s
    /// value when it has one (last-write-wins, matching single-registry
    /// semantics). This is how per-worker registries from a parallel run
    /// combine into one suite-wide snapshot.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            self.gauges.insert(k, v);
        }
        for (&k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// Serializable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), h.snapshot()))
                .collect(),
            timeseries: Vec::new(),
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], serializable to JSON.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Latency histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Per-heartbeat telemetry samples, filled in by harnesses that ran
    /// with a time-series collector attached (see
    /// [`crate::timeseries`]). Omitted from the JSON when empty so
    /// snapshots from runs without sampling are byte-identical to
    /// pre-telemetry versions.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub timeseries: Vec<TelemetrySample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("never"), 0);
        m.counter_inc("hits");
        m.counter_add("hits", 4);
        assert_eq!(m.counter("hits"), 5);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.gauge_set("g", 1.0);
        m.gauge_set("g", 0.25);
        assert_eq!(m.gauge("g"), Some(0.25));
    }

    #[test]
    fn merge_combines_counters_gauges_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add("placements", 10);
        a.counter_add("only_a", 1);
        a.gauge_set("pending_tasks", 3.0);
        a.observe("heartbeat_ns", 100);

        let mut b = MetricsRegistry::new();
        b.counter_add("placements", 5);
        b.counter_add("only_b", 2);
        b.gauge_set("pending_tasks", 9.0);
        b.observe("heartbeat_ns", 1_000_000);
        b.observe("schedule_ns", 50);

        a.merge(&b);
        assert_eq!(a.counter("placements"), 15);
        assert_eq!(a.counter("only_a"), 1);
        assert_eq!(a.counter("only_b"), 2);
        assert_eq!(a.gauge("pending_tasks"), Some(9.0));
        let h = a.histogram("heartbeat_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(100));
        assert_eq!(h.max(), Some(1_000_000));
        assert_eq!(a.histogram("schedule_ns").unwrap().count(), 1);
    }

    /// Workers in a sweep often touch *no* common metric (different
    /// fault families, different policies): merge must behave as pure
    /// union, preserving every key from both sides untouched.
    #[test]
    fn merge_with_fully_disjoint_counter_sets_is_union() {
        let mut a = MetricsRegistry::new();
        a.counter_add("fault_crashes", 3);
        a.counter_add("fault_evacuations", 7);

        let mut b = MetricsRegistry::new();
        b.counter_add("placements", 100);
        b.counter_add("task_retries", 2);

        a.merge(&b);
        assert_eq!(a.counter("fault_crashes"), 3);
        assert_eq!(a.counter("fault_evacuations"), 7);
        assert_eq!(a.counter("placements"), 100);
        assert_eq!(a.counter("task_retries"), 2);
        assert_eq!(a.snapshot().counters.len(), 4);
        // b is untouched by the merge.
        assert_eq!(b.counter("placements"), 100);
        assert_eq!(b.counter("fault_crashes"), 0);
    }

    /// Histograms whose populated-bucket counts differ (one worker saw a
    /// single latency regime, another saw a spread) must merge into the
    /// exact histogram a single registry would have produced — including
    /// when one side's histogram key is missing entirely.
    #[test]
    fn merge_with_mismatched_histogram_bucket_counts() {
        // a: all samples land in one bucket; b: spread across many.
        let mut a = MetricsRegistry::new();
        for _ in 0..5 {
            a.observe("heartbeat_ns", 100); // bucket [64,128)
        }
        let mut b = MetricsRegistry::new();
        let mut expect = Histogram::new();
        for _ in 0..5 {
            expect.record(100);
        }
        for v in [1u64, 500, 70_000, 9_000_000] {
            b.observe("heartbeat_ns", v);
            expect.record(v);
        }
        // One-sided key: only b recorded schedule_ns.
        b.observe("schedule_ns", 50);

        a.merge(&b);
        assert_eq!(
            a.histogram("heartbeat_ns").unwrap().snapshot(),
            expect.snapshot()
        );
        assert_eq!(a.histogram("schedule_ns").unwrap().count(), 1);
        assert_eq!(a.histogram("schedule_ns").unwrap().min(), Some(50));

        // Reverse direction: wide histogram folded into the narrow one.
        let mut a2 = MetricsRegistry::new();
        for v in [1u64, 500, 70_000, 9_000_000] {
            a2.observe("heartbeat_ns", v);
        }
        let mut b2 = MetricsRegistry::new();
        for _ in 0..5 {
            b2.observe("heartbeat_ns", 100);
        }
        a2.merge(&b2);
        assert_eq!(
            a2.histogram("heartbeat_ns").unwrap().snapshot(),
            expect.snapshot()
        );
    }

    /// Merging into a fresh registry copies everything (the fold's
    /// identity element), and merging an empty registry changes nothing.
    #[test]
    fn merge_with_empty_registry_is_identity() {
        let mut src = MetricsRegistry::new();
        src.counter_add("placements", 9);
        src.gauge_set("pending_tasks", 4.0);
        src.observe("heartbeat_ns", 123);

        let mut fresh = MetricsRegistry::new();
        fresh.merge(&src);
        assert_eq!(fresh.snapshot(), src.snapshot());

        let before = src.snapshot();
        src.merge(&MetricsRegistry::new());
        assert_eq!(src.snapshot(), before);
    }

    #[test]
    fn merged_registries_match_one_shared_registry() {
        // The determinism argument for the parallel runner: k workers
        // each recording into their own registry, merged, must equal one
        // registry that saw every sample.
        let mut combined = MetricsRegistry::new();
        let mut workers = vec![MetricsRegistry::new(), MetricsRegistry::new()];
        for (i, v) in [10u64, 20, 30, 40, 50].iter().enumerate() {
            workers[i % 2].observe("heartbeat_ns", *v);
            workers[i % 2].counter_inc("engine_events");
            combined.observe("heartbeat_ns", *v);
            combined.counter_inc("engine_events");
        }
        let mut merged = MetricsRegistry::new();
        for w in &workers {
            merged.merge(w);
        }
        assert_eq!(merged.snapshot(), combined.snapshot());
    }

    /// The Omega metric family (sharded multi-scheduler, DESIGN.md §14)
    /// merges like any other: conflict counters add across runs, the
    /// per-shard pass histogram merges bucket-wise, and the retry-peak
    /// gauge is last-write-wins. Pinned by name because the experiment
    /// runner folds per-worker registries and the sweep aggregator relies
    /// on exactly these semantics for the conflict-rate headline.
    #[test]
    fn omega_conflict_metrics_merge_across_registries() {
        use crate::names;

        let mut a = MetricsRegistry::new();
        a.counter_add(names::SCHED_CONFLICTS, 5);
        a.counter_add(names::CONFLICT_RETRY_ROUNDS, 2);
        a.gauge_set(names::CONFLICT_RETRY_PEAK, 1.0);
        a.observe(names::SHARD_HEARTBEAT_US, 120);
        a.observe(names::SHARD_HEARTBEAT_US, 480);

        let mut b = MetricsRegistry::new();
        b.counter_add(names::SCHED_CONFLICTS, 3);
        b.counter_add(names::CONFLICT_RETRY_ROUNDS, 1);
        b.gauge_set(names::CONFLICT_RETRY_PEAK, 3.0);
        b.observe(names::SHARD_HEARTBEAT_US, 9_000);

        a.merge(&b);
        assert_eq!(a.counter(names::SCHED_CONFLICTS), 8);
        assert_eq!(a.counter(names::CONFLICT_RETRY_ROUNDS), 3);
        assert_eq!(a.gauge(names::CONFLICT_RETRY_PEAK), Some(3.0));
        let h = a.histogram(names::SHARD_HEARTBEAT_US).unwrap();
        assert_eq!(h.count(), 3);
        let snap = h.snapshot();
        assert!(snap.p99.unwrap() >= 480, "{snap:?}");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut m = MetricsRegistry::new();
        m.counter_add("placements", 42);
        m.gauge_set("pending_tasks", 7.0);
        m.observe("heartbeat_ns", 1000);
        m.observe("heartbeat_ns", 2000);
        let snap = m.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counters["placements"], 42);
        assert_eq!(back.histograms["heartbeat_ns"].count, 2);
    }
}
