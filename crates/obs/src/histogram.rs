//! Fixed-bucket latency histograms.
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket `i`
//! (1 ≤ i ≤ 40) holds values in `[2^(i−1), 2^i)`, and one saturating
//! overflow bucket holds everything ≥ 2^40 (~18 minutes in nanoseconds —
//! far beyond any sane heartbeat). Recording is O(1) with no allocation;
//! quantiles are read by walking the cumulative counts.
//!
//! Exact `min`/`max`/`sum` are tracked alongside the buckets, so
//! single-sample and extreme quantiles report exact values rather than
//! bucket edges.

/// Number of power-of-two buckets before the overflow bucket.
pub const NUM_BUCKETS: usize = 41;

/// Largest value representable without falling into the overflow bucket.
pub const MAX_TRACKED: u64 = (1 << (NUM_BUCKETS - 1)) - 1;

/// A fixed-bucket histogram of `u64` samples (typically nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS + 1],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; NUM_BUCKETS + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value.
    #[inline]
    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            // floor(log2(v)) + 1, capped at the overflow bucket.
            let b = 64 - v.leading_zeros() as usize;
            b.min(NUM_BUCKETS)
        }
    }

    /// Inclusive upper edge of a bucket (used as the quantile
    /// representative for interior buckets).
    #[inline]
    fn upper_edge(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= NUM_BUCKETS {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, if any samples.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Quantile `q` in `[0, 1]`: the representative value below which at
    /// least `q` of the samples fall. Interior buckets report their upper
    /// edge clamped to the observed `[min, max]`, so a single-sample
    /// histogram reports the sample exactly and the overflow bucket
    /// reports the observed maximum.
    ///
    /// Edge cases are defined, not incidental: an empty histogram
    /// returns `None` for every `q` (including NaN); a NaN `q` returns
    /// `None` (NaN slips through `clamp`, and "quantile of NaN" has no
    /// meaningful rank); when all samples share one bucket, every
    /// quantile reports a value clamped into the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(Self::upper_edge(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram into this one. Buckets add element-wise
    /// (both sides share the fixed power-of-two layout), and the exact
    /// `count`/`sum`/`min`/`max` side-channels combine losslessly — so
    /// merging per-worker histograms from a parallel run yields the same
    /// quantiles the serial run would have reported.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot for serialization.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (Self::upper_edge(i), c))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Serializable summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: Option<u64>,
    /// Largest sample.
    pub max: Option<u64>,
    /// Arithmetic mean.
    pub mean: Option<f64>,
    /// Median.
    pub p50: Option<u64>,
    /// 90th percentile.
    pub p90: Option<u64>,
    /// 99th percentile.
    pub p99: Option<u64>,
    /// Non-empty buckets as `(inclusive upper edge, count)`; the edge
    /// `u64::MAX` marks the saturating overflow bucket.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(MAX_TRACKED), NUM_BUCKETS - 1);
        assert_eq!(Histogram::bucket(MAX_TRACKED + 1), NUM_BUCKETS);
        assert_eq!(Histogram::bucket(u64::MAX), NUM_BUCKETS);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert!(s.buckets.is_empty());
    }

    /// The snapshot's headline quantiles of an empty histogram are all
    /// absent — not zeros, not bucket edges.
    #[test]
    fn empty_histogram_snapshot_quantiles_are_none() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50, None);
        assert_eq!(s.p90, None);
        assert_eq!(s.p99, None);
        assert_eq!((s.min, s.max, s.mean), (None, None, None));
    }

    /// Out-of-range and non-finite `q` have pinned behavior: negatives
    /// clamp to the minimum quantile, >1 clamps to the maximum, and NaN
    /// (which `clamp` passes through) is rejected instead of producing a
    /// garbage rank.
    #[test]
    fn quantile_handles_out_of_range_and_nan_q() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(2000);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.5), h.quantile(1.0));
        assert_eq!(h.quantile(f64::INFINITY), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), None);
        assert_eq!(Histogram::new().quantile(f64::NAN), None);
    }

    /// Many samples collapsed into one bucket: every headline quantile is
    /// defined and lies within the observed range (here all samples are
    /// equal, so p50 = p90 = p99 = the sample).
    #[test]
    fn single_bucket_histogram_has_defined_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(5); // all in bucket [4, 8)
        }
        let s = h.snapshot();
        assert_eq!(s.p50, Some(5));
        assert_eq!(s.p90, Some(5));
        assert_eq!(s.p99, Some(5));
        assert_eq!(s.buckets, vec![(7, 100)]);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(777), "q={q}");
        }
        assert_eq!(h.min(), Some(777));
        assert_eq!(h.max(), Some(777));
        assert_eq!(h.mean(), Some(777.0));
    }

    #[test]
    fn overflow_bucket_saturates_to_observed_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 5);
        h.record(MAX_TRACKED + 1);
        assert_eq!(h.quantile(0.99), Some(u64::MAX));
        assert_eq!(h.quantile(0.01), Some(u64::MAX)); // all in overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(u64::MAX, 3)]);
        // Sum tracked in u128: no wrap even with several u64::MAX samples.
        assert!(h.mean().unwrap() > (u64::MAX / 2) as f64);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut h = Histogram::new();
        // 90 fast samples (~100ns bucket), 10 slow (~1e6ns bucket).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 < 256, "p50 {p50} should sit in the fast bucket");
        assert!(p99 >= 524_288, "p99 {p99} should sit in the slow bucket");
        assert_eq!(h.quantile(1.0), Some(1_000_000));
        // q=0 reports the first bucket's upper edge (100 lives in [64,128)).
        assert_eq!(h.quantile(0.0), Some(127));
    }

    #[test]
    fn quantile_representative_clamps_to_observed_range() {
        let mut h = Histogram::new();
        h.record(5); // bucket [4, 8) → upper edge 7, clamped to 5
        h.record(5);
        assert_eq!(h.quantile(0.5), Some(5));
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let xs = [0u64, 1, 5, 100, 1023, 1_000_000];
        let ys = [3u64, 100, 77_777, u64::MAX];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = a.snapshot();
        a.merge(&Histogram::new());
        assert_eq!(a.snapshot(), before);

        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.snapshot(), before);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 1000, 12345] {
            h.record(v);
        }
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
