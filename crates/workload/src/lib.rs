//! # tetris-workload
//!
//! Workload model and trace tooling for the Tetris reproduction.
//!
//! A [`Workload`] is a machine-independent description of a set of
//! data-parallel jobs: each [`JobSpec`] is a DAG of [`StageSpec`]s separated
//! by barriers, and each stage is a set of [`TaskSpec`]s with peak resource
//! demands and total work along every dimension (the `d` and `f` terms of
//! paper §3.1, Tables 4 and 5).
//!
//! Because the paper's Facebook/Bing traces are proprietary, this crate
//! ships **seeded synthetic generators** calibrated to the statistics the
//! paper publishes (§2.2.2): wide per-resource demand ranges (min ≈ 5–10×
//! below median, max ≈ 50× above), high coefficients of variation, and
//! near-zero correlation *across* resources, with low variation *within* a
//! stage. Three generators are provided:
//!
//! * [`WorkloadSuiteConfig`] — the deployment workload suite of §5.1
//!   (four job-size/selectivity classes, high/low mem, high/low cpu,
//!   uniform arrivals);
//! * [`FacebookTraceConfig`] — a Facebook-like trace with heavy-tailed job
//!   sizes and recurring job families (used by the simulation experiments);
//! * [`gen::motivating_example`] — the exact three-job workload of the
//!   paper's Figure 1.
//!
//! [`analysis`] reproduces the paper's workload tables (correlation matrix,
//! heat-map, CoV) from any workload, and [`trace`] round-trips workloads to
//! JSON so that recurring-job demand estimation has "prior runs" to learn
//! from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod gen;
mod ids;
mod spec;
pub mod stats;
pub mod trace;

pub use gen::{FacebookTraceConfig, ServingMixConfig, WorkloadSuiteConfig};
pub use ids::{BlockId, JobId, TaskUid};
pub use spec::{
    DiurnalCurve, InputSource, InputSpec, Job, JobClass, JobSpec, PlacementConstraints,
    PriorityClass, StageSpec, TaskSpec, ValidationError, Workload,
};
