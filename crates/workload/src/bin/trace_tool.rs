//! `trace-tool` — generate, inspect and analyze workload traces.
//!
//! ```sh
//! trace-tool generate suite    --jobs 50  --scale 0.08 --seed 42 -o suite.json
//! trace-tool generate facebook --jobs 120 --scale 0.06 --seed 43 -o fb.json
//! trace-tool info    fb.json
//! trace-tool analyze fb.json       # Table-2 correlations + Fig-2 diversity
//! ```

use std::process::exit;

use tetris_obs::summary::Summary;
use tetris_workload::analysis::{CorrelationMatrix, DemandDiversity, Heatmap};
use tetris_workload::{trace, FacebookTraceConfig, Workload, WorkloadSuiteConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  trace-tool generate <suite|facebook> [--jobs N] [--scale F] \
                 [--seed N] -o FILE\n  trace-tool info FILE\n  trace-tool analyze FILE"
            );
            exit(2);
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn generate(args: &[String]) {
    let kind = args.first().cloned().unwrap_or_default();
    let jobs: usize = flag(args, "--jobs").map_or(50, |v| v.parse().expect("--jobs"));
    let scale: f64 = flag(args, "--scale").map_or(0.08, |v| v.parse().expect("--scale"));
    let seed: u64 = flag(args, "--seed").map_or(42, |v| v.parse().expect("--seed"));
    let out = flag(args, "-o").unwrap_or_else(|| {
        eprintln!("generate requires -o FILE");
        exit(2);
    });
    let (w, provenance) = match kind.as_str() {
        "suite" => (
            WorkloadSuiteConfig::scaled(jobs, scale).generate(seed),
            format!("suite jobs={jobs} scale={scale} seed={seed}"),
        ),
        "facebook" => (
            FacebookTraceConfig {
                n_jobs: jobs,
                scale,
                ..FacebookTraceConfig::default()
            }
            .generate(seed),
            format!("facebook jobs={jobs} scale={scale} seed={seed}"),
        ),
        other => {
            eprintln!("unknown generator '{other}' (suite|facebook)");
            exit(2);
        }
    };
    trace::save(&out, &w, &provenance).expect("write trace");
    let mut s = Summary::new(format!("wrote {out}"));
    s.row("jobs", w.jobs.len())
        .row("tasks", w.num_tasks())
        .row("provenance", provenance);
    print!("{s}");
}

fn load(args: &[String]) -> (String, Workload, String) {
    let path = args.first().cloned().unwrap_or_else(|| {
        eprintln!("missing FILE argument");
        exit(2);
    });
    match trace::load(&path) {
        Ok(tf) => (path, tf.workload, tf.provenance),
        Err(e) => {
            eprintln!("failed to load trace: {e}");
            exit(1);
        }
    }
}

fn info(args: &[String]) {
    let (path, w, provenance) = load(args);
    let stages: usize = w.jobs.iter().map(|j| j.stages.len()).sum();
    let recurring = w.jobs.iter().filter(|j| j.family.is_some()).count();
    let horizon = w.jobs.iter().map(|j| j.arrival).fold(0.0f64, f64::max);
    let mut s = Summary::new(format!("{path} ({provenance})"));
    s.row("jobs", w.jobs.len())
        .row("tasks", w.num_tasks())
        .row("stored blocks", w.num_blocks)
        .row("stages", stages)
        .row("recurring jobs", recurring)
        .row("arrival horizon", format!("{horizon:.0}s"));
    print!("{s}");
}

fn analyze(args: &[String]) {
    let (_, w, _) = load(args);
    println!("== demand correlation (Table 2) ==");
    let m = CorrelationMatrix::compute(&w);
    println!("{}", m.render());
    println!("== demand diversity (Figure 2) ==");
    println!("{}", DemandDiversity::compute(&w).render());
    println!("== cores vs memory heat-map ==");
    println!("{}", Heatmap::compute(&w, 1, 20).render());
}
