//! `trace-tool` — generate, inspect and analyze workload traces, and read
//! the run artifacts the instrumented `reproduce` run emits.
//!
//! ```sh
//! trace-tool generate suite    --jobs 50  --scale 0.08 --seed 42 -o suite.json
//! trace-tool generate facebook --jobs 120 --scale 0.06 --seed 43 -o fb.json
//! trace-tool info    fb.json
//! trace-tool analyze fb.json       # Table-2 correlations + Fig-2 diversity
//! trace-tool explain run.jsonl --task 17   # why a task landed where it did
//! trace-tool explain run.jsonl --job 3     # every placement of one job
//! trace-tool report  ts.jsonl [--csv ts.csv]  # telemetry series summary
//! ```

use std::process::exit;

use tetris_obs::event::{Event, TraceRecord};
use tetris_obs::summary::Summary;
use tetris_obs::timeseries::{csv_row, SeriesSummary, CSV_HEADER};
use tetris_obs::TelemetrySample;
use tetris_workload::analysis::{CorrelationMatrix, DemandDiversity, Heatmap};
use tetris_workload::{trace, FacebookTraceConfig, Workload, WorkloadSuiteConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("report") => report(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  trace-tool generate <suite|facebook> [--jobs N] [--scale F] \
                 [--seed N] -o FILE\n  trace-tool info FILE\n  trace-tool analyze FILE\n  \
                 trace-tool explain TRACE.jsonl (--task N | --job N)\n  \
                 trace-tool report TIMESERIES.jsonl [--csv FILE]"
            );
            exit(2);
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn generate(args: &[String]) {
    let kind = args.first().cloned().unwrap_or_default();
    let jobs: usize = flag(args, "--jobs").map_or(50, |v| v.parse().expect("--jobs"));
    let scale: f64 = flag(args, "--scale").map_or(0.08, |v| v.parse().expect("--scale"));
    let seed: u64 = flag(args, "--seed").map_or(42, |v| v.parse().expect("--seed"));
    let out = flag(args, "-o").unwrap_or_else(|| {
        eprintln!("generate requires -o FILE");
        exit(2);
    });
    let (w, provenance) = match kind.as_str() {
        "suite" => (
            WorkloadSuiteConfig::scaled(jobs, scale).generate(seed),
            format!("suite jobs={jobs} scale={scale} seed={seed}"),
        ),
        "facebook" => (
            FacebookTraceConfig {
                n_jobs: jobs,
                scale,
                ..FacebookTraceConfig::default()
            }
            .generate(seed),
            format!("facebook jobs={jobs} scale={scale} seed={seed}"),
        ),
        other => {
            eprintln!("unknown generator '{other}' (suite|facebook)");
            exit(2);
        }
    };
    trace::save(&out, &w, &provenance).expect("write trace");
    let mut s = Summary::new(format!("wrote {out}"));
    s.row("jobs", w.jobs.len())
        .row("tasks", w.num_tasks())
        .row("provenance", provenance);
    print!("{s}");
}

fn load(args: &[String]) -> (String, Workload, String) {
    let path = args.first().cloned().unwrap_or_else(|| {
        eprintln!("missing FILE argument");
        exit(2);
    });
    match trace::load(&path) {
        Ok(tf) => (path, tf.workload, tf.provenance),
        Err(e) => {
            eprintln!("failed to load trace: {e}");
            exit(1);
        }
    }
}

fn info(args: &[String]) {
    let (path, w, provenance) = load(args);
    let stages: usize = w.jobs.iter().map(|j| j.stages.len()).sum();
    let recurring = w.jobs.iter().filter(|j| j.family.is_some()).count();
    let horizon = w.jobs.iter().map(|j| j.arrival).fold(0.0f64, f64::max);
    let mut s = Summary::new(format!("{path} ({provenance})"));
    s.row("jobs", w.jobs.len())
        .row("tasks", w.num_tasks())
        .row("stored blocks", w.num_blocks)
        .row("stages", stages)
        .row("recurring jobs", recurring)
        .row("arrival horizon", format!("{horizon:.0}s"));
    print!("{s}");
}

fn analyze(args: &[String]) {
    let (_, w, _) = load(args);
    println!("== demand correlation (Table 2) ==");
    let m = CorrelationMatrix::compute(&w);
    println!("{}", m.render());
    println!("== demand diversity (Figure 2) ==");
    println!("{}", DemandDiversity::compute(&w).render());
    println!("== cores vs memory heat-map ==");
    println!("{}", Heatmap::compute(&w, 1, 20).render());
}

/// Parse a decision-trace JSONL file into trace records. Exits 1 on
/// unreadable files or malformed lines (a truncated last line from a
/// killed run is reported with its line number).
fn load_trace(path: &str) -> Vec<TraceRecord> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str(line).unwrap_or_else(|e| {
                eprintln!("{path}:{}: bad trace line: {e}", i + 1);
                exit(1);
            })
        })
        .collect()
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |x| format!("{x:.4}"))
}

/// `explain TRACE.jsonl (--task N | --job N)` — reconstruct the placement
/// story of one task (or every task of one job) from the decision trace:
/// where it went, the score that won, and — when the trace was recorded
/// with `--trace-verbose` — the runner-up candidates it beat plus the
/// incremental-cache state behind the decision.
fn explain(args: &[String]) {
    let path = args.first().cloned().unwrap_or_else(|| {
        eprintln!("usage: trace-tool explain TRACE.jsonl (--task N | --job N)");
        exit(2);
    });
    let task_filter: Option<usize> = flag(args, "--task").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--task expects a task uid");
            exit(2);
        })
    });
    let job_filter: Option<usize> = flag(args, "--job").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--job expects a job id");
            exit(2);
        })
    });
    if task_filter.is_none() == job_filter.is_none() {
        eprintln!("explain needs exactly one of --task N or --job N");
        exit(2);
    }
    let matches_filter = |job: usize, task: usize| {
        task_filter.is_none_or(|t| t == task) && job_filter.is_none_or(|j| j == job)
    };

    let records = load_trace(&path);
    let mut shown = 0usize;
    for r in &records {
        match &r.event {
            Event::TaskPlaced {
                job,
                task,
                machine,
                alignment_score,
                srtf_score,
                combined_score,
                considered_machines,
                provenance,
                priority,
            } if matches_filter(*job, *task) => {
                shown += 1;
                let prio = priority.map_or(String::new(), |p| format!(" priority=p{p}"));
                println!(
                    "t={:.2} job={job} task={task} PLACED on machine {machine}{prio}",
                    r.t
                );
                println!(
                    "  scores: alignment={} srtf={} combined={} considered_machines={}",
                    fmt_opt(*alignment_score),
                    fmt_opt(*srtf_score),
                    fmt_opt(*combined_score),
                    considered_machines.map_or("-".to_string(), |c| c.to_string()),
                );
                match provenance {
                    Some(p) => {
                        println!(
                            "  incremental: cache_hits={} cache_rebuilds={} \
                             cache_flushed={} dirty_jobs={}",
                            p.cache_hits, p.cache_rebuilds, p.cache_flushed, p.dirty_jobs
                        );
                        println!(
                            "  candidates scored on this machine: {} ({} rejected shown)",
                            p.candidates,
                            p.rejected.len()
                        );
                        for (i, c) in p.rejected.iter().enumerate() {
                            println!(
                                "    rejected #{}: job={} task={} alignment={} srtf={} score={:.4}",
                                i + 1,
                                c.job,
                                c.task,
                                fmt_opt(c.alignment),
                                fmt_opt(c.srtf),
                                c.score
                            );
                        }
                    }
                    None => {
                        println!("  (no provenance in this trace — record it with --trace-verbose)")
                    }
                }
            }
            Event::TaskPreempted {
                job,
                task,
                machine,
                reason,
                priority,
                preempted_by,
            } if matches_filter(*job, *task) => {
                let prio = priority.map_or(String::new(), |p| format!(" priority=p{p}"));
                let by = preempted_by.map_or(String::new(), |t| format!(" preempted_by=task {t}"));
                println!(
                    "t={:.2} job={job} task={task} PREEMPTED from machine {machine} \
                     ({reason}){prio}{by}",
                    r.t
                );
            }
            Event::TaskCompleted {
                job,
                task,
                machine,
                attempts,
            } if matches_filter(*job, *task) => {
                println!(
                    "t={:.2} job={job} task={task} COMPLETED on machine {machine} \
                     (attempts={attempts})",
                    r.t
                );
            }
            Event::TaskAbandoned {
                job,
                task,
                attempts,
            } if matches_filter(*job, *task) => {
                println!(
                    "t={:.2} job={job} task={task} ABANDONED after {attempts} attempts",
                    r.t
                );
            }
            _ => {}
        }
    }
    if shown == 0 {
        let what = match (task_filter, job_filter) {
            (Some(t), _) => format!("task {t}"),
            (_, Some(j)) => format!("job {j}"),
            _ => unreachable!(),
        };
        eprintln!("no placements of {what} in {path}");
        exit(1);
    }
}

/// `report TS.jsonl [--csv FILE]` — summarize a telemetry time-series
/// stream: headline min/mean/max per column, a downsampled table of the
/// curves, and optionally the full series as CSV.
fn report(args: &[String]) {
    let path = args.first().cloned().unwrap_or_else(|| {
        eprintln!("usage: trace-tool report TIMESERIES.jsonl [--csv FILE]");
        exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let samples: Vec<TelemetrySample> = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str(line).unwrap_or_else(|e| {
                eprintln!("{path}:{}: bad telemetry line: {e}", i + 1);
                exit(1);
            })
        })
        .collect();
    if samples.is_empty() {
        eprintln!("{path}: empty time-series");
        exit(1);
    }

    println!("== telemetry summary ({path}) ==");
    print!("{}", SeriesSummary::compute(&samples).render());

    // Downsampled curve table: at most 20 evenly spaced rows, always
    // including the last sample, so a long run still fits a terminal.
    println!();
    println!(
        "{:>10} {:>9} {:>9} {:>6} {:>8} {:>8} {:>8} {:>8} {:>5}",
        "t", "max_alloc", "max_usage", "frag", "pack_eff", "pending", "running", "suspect", "down"
    );
    let step = samples.len().div_ceil(20).max(1);
    let rows = samples
        .iter()
        .step_by(step)
        .chain(if !(samples.len() - 1).is_multiple_of(step) {
            samples.last()
        } else {
            None
        });
    for s in rows {
        println!(
            "{:>10.2} {:>9.4} {:>9.4} {:>6.3} {:>8.4} {:>8} {:>8} {:>8} {:>5}",
            s.t,
            s.alloc.max(),
            s.usage.max(),
            s.fragmentation,
            s.packing_efficiency,
            s.pending_tasks,
            s.running_tasks,
            s.suspect_machines,
            s.down_machines
        );
    }

    if let Some(csv_path) = flag(args, "--csv") {
        let mut out = String::with_capacity(samples.len() * 96);
        out.push_str(CSV_HEADER);
        out.push('\n');
        for s in &samples {
            out.push_str(&csv_row(s));
            out.push('\n');
        }
        std::fs::write(&csv_path, out).unwrap_or_else(|e| {
            eprintln!("cannot write {csv_path}: {e}");
            exit(1);
        });
        println!("\ncsv -> {csv_path}");
    }
}
