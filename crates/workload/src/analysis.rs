//! Workload analysis: the statistics the paper reports about its production
//! traces (§2.2.2) — demand correlation (Table 2), demand heat-maps
//! (Figure 2), coefficients of variation — computed over any [`Workload`].
//!
//! Resource *tightness* (Table 3) needs a simulation run and therefore
//! lives in `tetris-metrics`.

use tetris_resources::{Resource, ResourceVec};

use crate::spec::Workload;
use crate::stats::{coeff_of_variation, pearson};

/// The four "reporting view" dimensions the paper's workload tables use:
/// cores, memory, disk (read+write) and network (in+out).
pub const REPORT_DIMS: [&str; 4] = ["cores", "memory", "disk", "network"];

/// Project a 6-dim demand vector onto the 4-dim reporting view.
pub fn report_view(d: &ResourceVec) -> [f64; 4] {
    [
        d.get(Resource::Cpu),
        d.get(Resource::Mem),
        d.get(Resource::DiskRead) + d.get(Resource::DiskWrite),
        d.get(Resource::NetIn) + d.get(Resource::NetOut),
    ]
}

/// Per-task demand samples in the 4-dim reporting view.
pub fn demand_samples(w: &Workload) -> Vec<[f64; 4]> {
    w.tasks().map(|t| report_view(&t.demand)).collect()
}

/// Table 2: Pearson correlation between per-task demands of each resource
/// pair. Production finding: "There is little correlation across demands
/// for various resources"; even the highest (cores↔memory) is moderate.
#[derive(Debug, Clone)]
pub struct CorrelationMatrix {
    /// `matrix[i][j]` = correlation between reporting dims i and j.
    pub matrix: [[f64; 4]; 4],
}

impl CorrelationMatrix {
    /// Compute over all tasks of a workload.
    pub fn compute(w: &Workload) -> Self {
        let samples = demand_samples(w);
        let cols: Vec<Vec<f64>> = (0..4)
            .map(|d| samples.iter().map(|s| s[d]).collect())
            .collect();
        let mut matrix = [[0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                matrix[i][j] = if i == j {
                    1.0
                } else {
                    pearson(&cols[i], &cols[j])
                };
            }
        }
        CorrelationMatrix { matrix }
    }

    /// Largest off-diagonal |correlation| (the paper's headline: even the
    /// max is only moderate).
    pub fn max_off_diagonal(&self) -> f64 {
        let mut m: f64 = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    m = m.max(self.matrix[i][j].abs());
                }
            }
        }
        m
    }

    /// Render as the paper's upper-triangular table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "", REPORT_DIMS[0], REPORT_DIMS[1], REPORT_DIMS[2], REPORT_DIMS[3]
        ));
        for i in 0..4 {
            out.push_str(&format!("{:>8}", REPORT_DIMS[i]));
            for j in 0..4 {
                if j <= i {
                    out.push_str(&format!(" {:>8}", "—"));
                } else {
                    out.push_str(&format!(" {:>8.2}", self.matrix[i][j]));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Summary of per-resource demand diversity (the Figure-2 narration:
/// "minimum values are 5–10× lower than the median, which in turn is ~50×
/// lower than the maximum", and the CoV row).
#[derive(Debug, Clone)]
pub struct DemandDiversity {
    /// Per reporting dim: (min, median, max, coefficient of variation),
    /// computed over tasks with non-zero demand on that dim.
    pub rows: [(f64, f64, f64, f64); 4],
}

impl DemandDiversity {
    /// Compute over all tasks of a workload.
    pub fn compute(w: &Workload) -> Self {
        let samples = demand_samples(w);
        let mut rows = [(0.0, 0.0, 0.0, 0.0); 4];
        for d in 0..4 {
            let mut xs: Vec<f64> = samples.iter().map(|s| s[d]).filter(|&x| x > 0.0).collect();
            if xs.is_empty() {
                continue;
            }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let min = xs[0];
            let max = *xs.last().unwrap();
            let med = crate::stats::percentile_sorted(&xs, 0.5);
            rows[d] = (min, med, max, coeff_of_variation(&xs));
        }
        DemandDiversity { rows }
    }

    /// Render one line per reporting dim.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>8} {:>12} {:>12} {:>12} {:>8}\n",
            "dim", "min", "median", "max", "CoV"
        ));
        for (d, (min, med, max, cov)) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "{:>8} {:>12.3e} {:>12.3e} {:>12.3e} {:>8.2}\n",
                REPORT_DIMS[d], min, med, max, cov
            ));
        }
        out
    }
}

/// §4.1: coefficient of variation of demands *within* each stage, averaged
/// over stages (weighted by stage size), per reporting dim.
///
/// The paper measures in-phase CoVs of ~0.02–0.2 — far below the
/// across-task CoVs of Figure 2 — which is what makes "estimate later
/// tasks of a phase from the first few" sound.
pub fn within_stage_cov(w: &Workload) -> [f64; 4] {
    let mut acc = [0.0f64; 4];
    let mut weight = 0.0f64;
    for job in &w.jobs {
        for stage in &job.stages {
            if stage.tasks.len() < 2 {
                continue;
            }
            let n = stage.tasks.len() as f64;
            for d in 0..4 {
                let xs: Vec<f64> = stage
                    .tasks
                    .iter()
                    .map(|t| report_view(&t.demand)[d])
                    .collect();
                acc[d] += coeff_of_variation(&xs) * n;
            }
            weight += n;
        }
    }
    if weight > 0.0 {
        for a in &mut acc {
            *a /= weight;
        }
    }
    acc
}

/// Figure 2: a 2-D histogram ("heat-map") of task demands, cores on the x
/// axis vs another reporting dim on the y axis, with log-scale counts.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Y-axis reporting dim index (1 = memory, 2 = disk, 3 = network).
    pub y_dim: usize,
    /// Number of bins per axis.
    pub bins: usize,
    /// `counts[y][x]` tasks whose normalized demands land in the cell.
    pub counts: Vec<Vec<u64>>,
    /// Max x (cores) among samples, for axis labelling.
    pub x_max: f64,
    /// Max y among samples.
    pub y_max: f64,
}

impl Heatmap {
    /// Build a heat-map of cores vs `y_dim` over all tasks.
    pub fn compute(w: &Workload, y_dim: usize, bins: usize) -> Self {
        assert!((1..4).contains(&y_dim), "y_dim must be 1..=3");
        assert!(bins >= 2);
        let samples = demand_samples(w);
        let x_max = samples.iter().map(|s| s[0]).fold(0.0, f64::max).max(1e-12);
        let y_max = samples
            .iter()
            .map(|s| s[y_dim])
            .fold(0.0, f64::max)
            .max(1e-12);
        let mut counts = vec![vec![0u64; bins]; bins];
        for s in &samples {
            let xi = ((s[0] / x_max) * bins as f64).min(bins as f64 - 1.0) as usize;
            let yi = ((s[y_dim] / y_max) * bins as f64).min(bins as f64 - 1.0) as usize;
            counts[yi][xi] += 1;
        }
        Heatmap {
            y_dim,
            bins,
            counts,
            x_max,
            y_max,
        }
    }

    /// Total samples binned.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Number of non-empty cells — a scalar proxy for "demands are spread
    /// across the space", which is what Figure 2 shows visually.
    pub fn occupied_cells(&self) -> usize {
        self.counts.iter().flatten().filter(|&&c| c > 0).count()
    }

    /// ASCII rendering with log-scale shading (the harness prints this as
    /// the Figure-2 stand-in).
    pub fn render(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let mut out = String::new();
        for y in (0..self.bins).rev() {
            for x in 0..self.bins {
                let c = self.counts[y][x];
                let shade = if c == 0 {
                    0
                } else {
                    // log10 scale, clamped to the shade ramp.
                    (((c as f64).log10().floor() as usize) + 1).min(SHADES.len() - 1)
                };
                out.push(SHADES[shade] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::FacebookTraceConfig;
    use crate::WorkloadSuiteConfig;

    fn trace() -> Workload {
        FacebookTraceConfig {
            n_jobs: 150,
            scale: 0.05,
            ..FacebookTraceConfig::default()
        }
        .generate(42)
    }

    #[test]
    fn correlation_diagonal_is_one() {
        let m = CorrelationMatrix::compute(&trace());
        for i in 0..4 {
            assert_eq!(m.matrix[i][i], 1.0);
        }
    }

    #[test]
    fn correlation_is_symmetric() {
        let m = CorrelationMatrix::compute(&trace());
        for i in 0..4 {
            for j in 0..4 {
                assert!((m.matrix[i][j] - m.matrix[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn table2_little_cross_resource_correlation() {
        // The paper's headline: demands for different resources are not
        // correlated (max |r| is "only moderate").
        let m = CorrelationMatrix::compute(&trace());
        assert!(
            m.max_off_diagonal() < 0.55,
            "max off-diagonal correlation {} too high:\n{}",
            m.max_off_diagonal(),
            m.render()
        );
        // Disk and network must not be strongly coupled (the over-allocation
        // experiments rely on them being independently tight).
        assert!(
            m.matrix[2][3].abs() < 0.5,
            "disk↔network correlation {} too high:\n{}",
            m.matrix[2][3],
            m.render()
        );
    }

    #[test]
    fn fig2_demands_are_diverse() {
        let d = DemandDiversity::compute(&trace());
        // CoV high for every dim (paper: 0.64–1.84).
        for (i, row) in d.rows.iter().enumerate() {
            assert!(row.3 > 0.4, "dim {i} CoV {} too low\n{}", row.3, d.render());
        }
        // min ≪ median ≪ max for memory.
        let (min, med, max, _) = d.rows[1];
        assert!(med / min > 3.0, "memory median/min = {}", med / min);
        assert!(max / med > 3.0, "memory max/median = {}", max / med);
    }

    #[test]
    fn within_stage_variation_is_far_below_across_task_variation() {
        // Paper §4.1: tasks of a phase are statistically similar.
        let w = trace();
        let within = within_stage_cov(&w);
        let across = DemandDiversity::compute(&w);
        for d in 0..4 {
            assert!(
                within[d] < 0.25,
                "dim {d}: within-stage CoV {} too high",
                within[d]
            );
            if across.rows[d].3 > 0.0 {
                assert!(
                    within[d] < across.rows[d].3 * 0.5,
                    "dim {d}: within {} not well below across {}",
                    within[d],
                    across.rows[d].3
                );
            }
        }
    }

    #[test]
    fn suite_workload_also_diverse() {
        let w = WorkloadSuiteConfig::small().generate(7);
        let d = DemandDiversity::compute(&w);
        assert!(d.rows[1].3 > 0.3, "suite memory CoV {}", d.rows[1].3);
    }

    #[test]
    fn heatmap_bins_everything() {
        let w = trace();
        let h = Heatmap::compute(&w, 1, 10);
        assert_eq!(h.total() as usize, w.num_tasks());
        assert!(h.occupied_cells() > 5, "cells {}", h.occupied_cells());
        let rendering = h.render();
        assert_eq!(rendering.lines().count(), 10);
    }

    #[test]
    #[should_panic(expected = "y_dim")]
    fn heatmap_rejects_cores_vs_cores() {
        Heatmap::compute(&trace(), 0, 10);
    }

    #[test]
    fn renders_are_nonempty() {
        let w = trace();
        assert!(!CorrelationMatrix::compute(&w).render().is_empty());
        assert!(!DemandDiversity::compute(&w).render().is_empty());
    }
}
