//! Small statistics toolkit used by workload analysis and the evaluation
//! metrics: means, coefficients of variation, Pearson correlation,
//! percentiles and empirical CDFs.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Coefficient of variation (σ/μ); 0 when the mean is 0.
///
/// The paper reports demand CoVs of ≈1.0 (cpu), 0.64 (mem), 1.84 (disk),
/// 1.35 (network) across tasks (§2.2.2) and much smaller CoVs *within* a
/// stage (§4.1) — both are verified against generated traces.
pub fn coeff_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(xs) / m
    }
}

/// Pearson correlation coefficient; 0 when either side has no variance.
///
/// Used for the paper's Table 2 (cross-resource demand correlation).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson needs equal-length samples");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// `q`-th percentile (`q ∈ [0,1]`) by linear interpolation on a *sorted
/// copy* of the data; 0 for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&sorted, q)
}

/// `q`-th percentile of already-sorted data.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// An empirical CDF: sorted samples with evaluation helpers, plus fixed-grid
/// rendering for the paper's CDF figures (Figs. 4, 7).
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from arbitrary samples (NaNs are rejected by panic — CDFs of
    /// metrics must be total).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "NaN sample in ECDF input"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile).
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q)
    }

    /// Sample `(x, P(X ≤ x))` pairs at `n` evenly spaced quantiles — the
    /// series the figure harness prints.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        (0..=n)
            .map(|i| {
                let q = i as f64 / n as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// Fraction of samples strictly below zero (used for "fraction of jobs
    /// that slow down" in Figs. 4/7/9).
    pub fn frac_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((coeff_of_variation(&xs) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(coeff_of_variation(&[0.0, 0.0]), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_no_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_independent_is_small() {
        // Deterministic pseudo-random pairs via a simple LCG.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<f64> = (0..5000).map(|_| next()).collect();
        let ys: Vec<f64> = (0..5000).map(|_| next()).collect();
        assert!(pearson(&xs, &ys).abs() < 0.05);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
    }

    #[test]
    fn ecdf_frac_below() {
        let e = Ecdf::new(vec![-2.0, -1.0, 0.0, 1.0]);
        assert_eq!(e.frac_below(0.0), 0.5);
        assert_eq!(e.frac_below(-5.0), 0.0);
        assert_eq!(e.frac_below(5.0), 1.0);
    }

    #[test]
    fn ecdf_series_is_monotone() {
        let e = Ecdf::new((0..100).map(|i| (i * 7 % 31) as f64).collect());
        let s = e.series(20);
        assert_eq!(s.len(), 21);
        for w in s.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }
}
