//! Typed identifiers for workload entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[derive(serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub usize);

        impl $name {
            /// Raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a job within a [`crate::Workload`] (dense, 0-based).
    JobId,
    "j"
);

id_type!(
    /// Globally unique identifier of a task within a [`crate::Workload`]
    /// (dense across all jobs and stages).
    TaskUid,
    "t"
);

id_type!(
    /// Identifier of a stored data block (HDFS-style); block → machine
    /// replica placement is decided when a workload is bound to a cluster.
    BlockId,
    "b"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(JobId(3).to_string(), "j3");
        assert_eq!(TaskUid(42).to_string(), "t42");
        assert_eq!(BlockId(0).to_string(), "b0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(JobId(1) < JobId(2));
        assert_eq!(TaskUid::from(5).index(), 5);
    }

    #[test]
    fn ids_hash_distinctly() {
        use std::collections::HashSet;
        let set: HashSet<TaskUid> = (0..100).map(TaskUid).collect();
        assert_eq!(set.len(), 100);
    }
}
