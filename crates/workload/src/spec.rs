//! Machine-independent workload descriptions: tasks, stages, jobs, DAGs.

use std::collections::HashSet;
use std::fmt;

use tetris_resources::{Resource, ResourceVec};

use crate::ids::{BlockId, JobId, TaskUid};

/// Where a task's input bytes come from.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum InputSource {
    /// A stored (HDFS-style) data block. Replica → machine placement is
    /// decided when the workload is bound to a concrete cluster, so the
    /// workload itself stays machine-independent.
    Stored(BlockId),
    /// Shuffle: read the outputs of an upstream stage (by stage index within
    /// the same job). The set of source machines is known only at runtime —
    /// wherever the upstream tasks actually ran — which is exactly why the
    /// paper's disk/network demands are placement-dependent (§3.1).
    Shuffle {
        /// Index of the upstream stage whose outputs are read.
        stage: usize,
    },
}

/// One input chunk of a task.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InputSpec {
    /// Where the bytes live.
    pub source: InputSource,
    /// How many bytes this task reads from that source.
    pub bytes: f64,
}

/// Static description of one task: peak demands (`d` of paper Table 4) and
/// total work (`f` terms of eqn. 5).
///
/// The *demand* vector holds peak rates (cores, bytes/s) plus peak memory
/// bytes; the *work* quantities ([`TaskSpec::cpu_work`],
/// [`TaskSpec::output_bytes`], input bytes) are what must be processed.
/// A task's runtime is therefore `work / allocated rate`, maximized over
/// dimensions — allocate less than peak and the task stretches, which is how
/// over-allocation by baseline schedulers manifests.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TaskSpec {
    /// Workload-unique task id.
    pub uid: TaskUid,
    /// Owning job.
    pub job: JobId,
    /// Stage index within the job.
    pub stage: usize,
    /// Index within the stage.
    pub index: usize,
    /// True peak resource demands.
    pub demand: ResourceVec,
    /// Total CPU work in core-seconds (`f^cpu`).
    pub cpu_work: f64,
    /// Bytes written to the local disk (`f^diskW`); also the bytes exposed
    /// to downstream shuffle readers.
    pub output_bytes: f64,
    /// Input chunks to read before/while computing.
    pub inputs: Vec<InputSpec>,
}

impl TaskSpec {
    /// Total input bytes across all chunks.
    pub fn input_bytes(&self) -> f64 {
        self.inputs.iter().map(|i| i.bytes).sum()
    }

    /// Lower bound on the task's duration: peak allocation, all inputs
    /// local. This is the `duration` the schedulers *estimate* with
    /// (paper §3.3.1 estimates durations from work and peak demands).
    pub fn ideal_duration(&self) -> f64 {
        let mut d: f64 = 0.0;
        let cpu = self.demand.get(Resource::Cpu);
        if self.cpu_work > 0.0 {
            d = d.max(self.cpu_work / cpu);
        }
        let dw = self.demand.get(Resource::DiskWrite);
        if self.output_bytes > 0.0 {
            d = d.max(self.output_bytes / dw);
        }
        let dr = self.demand.get(Resource::DiskRead);
        let inb = self.input_bytes();
        if inb > 0.0 {
            d = d.max(inb / dr);
        }
        d
    }

    /// The local-view work vector (`f` terms): cpu core-seconds, bytes read
    /// (assuming local input), bytes written.
    pub fn work_vector(&self) -> ResourceVec {
        ResourceVec::zero()
            .with(Resource::Cpu, self.cpu_work)
            .with(Resource::DiskRead, self.input_bytes())
            .with(Resource::DiskWrite, self.output_bytes)
    }

    /// True if any input is a shuffle read.
    pub fn reads_shuffle(&self) -> bool {
        self.inputs
            .iter()
            .any(|i| matches!(i.source, InputSource::Shuffle { .. }))
    }
}

/// A stage: a set of tasks doing the same computation over different data
/// partitions, separated from upstream stages by a barrier.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageSpec {
    /// Human-readable name ("map", "reduce", "join-2", ...).
    pub name: String,
    /// Upstream stage indices. All upstream tasks must finish before any
    /// task of this stage starts (strict barrier, paper §2.1/§3.5).
    pub deps: Vec<usize>,
    /// The stage's tasks.
    pub tasks: Vec<TaskSpec>,
}

impl StageSpec {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the stage has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// A job: a DAG of stages plus an arrival time.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Dense job id within the workload.
    pub id: JobId,
    /// Human-readable name.
    pub name: String,
    /// Recurring-job family. Analytics jobs repeat hourly/daily on new data
    /// (paper §4.1); jobs in the same family share demand statistics, which
    /// is what the demand estimator exploits.
    pub family: Option<String>,
    /// Arrival time in seconds from the start of the trace.
    pub arrival: f64,
    /// Stages in topological order (deps always point backwards).
    pub stages: Vec<StageSpec>,
}

/// Convenience alias: a `Job` is its static spec.
pub type Job = JobSpec;

impl JobSpec {
    /// Total number of tasks across stages.
    pub fn num_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }

    /// Iterate over all tasks of the job.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskSpec> {
        self.stages.iter().flat_map(|s| s.tasks.iter())
    }

    /// Sum of ideal task durations — a crude job-length scale used by
    /// tests and reporting (not the SRTF score, which lives in
    /// `tetris-core`).
    pub fn total_ideal_work_seconds(&self) -> f64 {
        self.tasks().map(|t| t.ideal_duration()).sum()
    }
}

/// A complete workload: jobs plus the universe of stored data blocks their
/// map tasks read.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// Jobs, indexed by [`JobId`].
    pub jobs: Vec<JobSpec>,
    /// Number of distinct stored blocks referenced by `Stored` inputs.
    /// Block → machine replica placement happens at simulation bind time.
    pub num_blocks: usize,
}

/// Error from [`Workload::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// `jobs[i].id != i`.
    NonDenseJobId(usize),
    /// Task uid appears twice or task back-references the wrong job/stage.
    BadTaskIdentity(TaskUid),
    /// Stage dep points at itself or forward (stages must be topo-ordered).
    BadStageDep {
        /// Offending job.
        job: JobId,
        /// Offending stage index.
        stage: usize,
        /// The invalid dependency value.
        dep: usize,
    },
    /// Shuffle input references a stage that is not a declared dependency.
    ShuffleNotADep {
        /// Offending task.
        task: TaskUid,
        /// The referenced stage index.
        stage: usize,
    },
    /// Stored input references a block id `>= num_blocks`.
    UnknownBlock(BlockId),
    /// A demand component is negative or NaN.
    BadDemand(TaskUid),
    /// Task has work along a dimension but zero peak demand for it, so its
    /// duration would be infinite.
    WorkWithoutDemand {
        /// Offending task.
        task: TaskUid,
        /// Dimension with work but no demand.
        resource: Resource,
    },
    /// Negative arrival time.
    BadArrival(JobId),
    /// A job has no stages or a stage has no tasks.
    Empty(JobId),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NonDenseJobId(i) => write!(f, "job at position {i} has wrong id"),
            ValidationError::BadTaskIdentity(t) => write!(f, "task {t} has bad identity"),
            ValidationError::BadStageDep { job, stage, dep } => {
                write!(f, "{job} stage {stage} has invalid dep {dep}")
            }
            ValidationError::ShuffleNotADep { task, stage } => {
                write!(f, "task {task} shuffles from non-dependency stage {stage}")
            }
            ValidationError::UnknownBlock(b) => write!(f, "unknown block {b}"),
            ValidationError::BadDemand(t) => write!(f, "task {t} has negative/NaN demand"),
            ValidationError::WorkWithoutDemand { task, resource } => {
                write!(f, "task {task} has {resource} work but zero demand")
            }
            ValidationError::BadArrival(j) => write!(f, "{j} has negative arrival"),
            ValidationError::Empty(j) => write!(f, "{j} has an empty stage list or stage"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl Workload {
    /// Total number of tasks across all jobs.
    pub fn num_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.num_tasks()).sum()
    }

    /// Look up a task by uid (O(#jobs + #stage tasks); build an index if you
    /// need this hot — the simulator does).
    pub fn task(&self, uid: TaskUid) -> Option<&TaskSpec> {
        self.jobs
            .iter()
            .flat_map(|j| j.tasks())
            .find(|t| t.uid == uid)
    }

    /// Iterate over all tasks.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskSpec> {
        self.jobs.iter().flat_map(|j| j.tasks())
    }

    /// Check every structural invariant the simulator relies on.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let mut seen_uids = HashSet::new();
        for (ji, job) in self.jobs.iter().enumerate() {
            if job.id.index() != ji {
                return Err(ValidationError::NonDenseJobId(ji));
            }
            if !(job.arrival >= 0.0) {
                return Err(ValidationError::BadArrival(job.id));
            }
            if job.stages.is_empty() || job.stages.iter().any(|s| s.is_empty()) {
                return Err(ValidationError::Empty(job.id));
            }
            for (si, stage) in job.stages.iter().enumerate() {
                for &dep in &stage.deps {
                    if dep >= si {
                        return Err(ValidationError::BadStageDep {
                            job: job.id,
                            stage: si,
                            dep,
                        });
                    }
                }
                for (ti, task) in stage.tasks.iter().enumerate() {
                    if task.job != job.id || task.stage != si || task.index != ti {
                        return Err(ValidationError::BadTaskIdentity(task.uid));
                    }
                    if !seen_uids.insert(task.uid) {
                        return Err(ValidationError::BadTaskIdentity(task.uid));
                    }
                    if task.demand.has_nan() || task.demand.min_component() < 0.0 {
                        return Err(ValidationError::BadDemand(task.uid));
                    }
                    for input in &task.inputs {
                        match input.source {
                            InputSource::Stored(b) => {
                                if b.index() >= self.num_blocks {
                                    return Err(ValidationError::UnknownBlock(b));
                                }
                            }
                            InputSource::Shuffle { stage: up } => {
                                if !stage.deps.contains(&up) {
                                    return Err(ValidationError::ShuffleNotADep {
                                        task: task.uid,
                                        stage: up,
                                    });
                                }
                            }
                        }
                    }
                    // Work along a dimension requires non-zero peak demand.
                    let checks = [
                        (task.cpu_work, Resource::Cpu),
                        (task.output_bytes, Resource::DiskWrite),
                        (task.input_bytes(), Resource::DiskRead),
                    ];
                    for (work, r) in checks {
                        if work > 0.0 && task.demand.get(r) <= 0.0 {
                            return Err(ValidationError::WorkWithoutDemand {
                                task: task.uid,
                                resource: r,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::units::{GB, MB};

    fn simple_task(uid: usize, job: usize, stage: usize, index: usize) -> TaskSpec {
        TaskSpec {
            uid: TaskUid(uid),
            job: JobId(job),
            stage,
            index,
            demand: ResourceVec::zero()
                .with(Resource::Cpu, 1.0)
                .with(Resource::Mem, 2.0 * GB)
                .with(Resource::DiskRead, 50.0 * MB)
                .with(Resource::DiskWrite, 50.0 * MB),
            cpu_work: 30.0,
            output_bytes: 100.0 * MB,
            inputs: vec![InputSpec {
                source: InputSource::Stored(BlockId(0)),
                bytes: 200.0 * MB,
            }],
        }
    }

    fn simple_workload() -> Workload {
        let map = StageSpec {
            name: "map".into(),
            deps: vec![],
            tasks: vec![simple_task(0, 0, 0, 0), simple_task(1, 0, 0, 1)],
        };
        let mut rt = simple_task(2, 0, 1, 0);
        rt.inputs = vec![InputSpec {
            source: InputSource::Shuffle { stage: 0 },
            bytes: 150.0 * MB,
        }];
        let reduce = StageSpec {
            name: "reduce".into(),
            deps: vec![0],
            tasks: vec![rt],
        };
        Workload {
            jobs: vec![JobSpec {
                id: JobId(0),
                name: "job0".into(),
                family: None,
                arrival: 0.0,
                stages: vec![map, reduce],
            }],
            num_blocks: 1,
        }
    }

    #[test]
    fn valid_workload_passes() {
        assert_eq!(simple_workload().validate(), Ok(()));
    }

    #[test]
    fn ideal_duration_is_bottleneck() {
        let t = simple_task(0, 0, 0, 0);
        // cpu: 30s; read: 200MB/50MBps = 4s; write: 100/50 = 2s → 30s.
        assert!((t.ideal_duration() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_duration_io_bound() {
        let mut t = simple_task(0, 0, 0, 0);
        t.cpu_work = 1.0;
        assert!((t.ideal_duration() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn counts() {
        let w = simple_workload();
        assert_eq!(w.num_tasks(), 3);
        assert_eq!(w.jobs[0].num_tasks(), 3);
        assert!(w.task(TaskUid(2)).unwrap().reads_shuffle());
        assert!(!w.task(TaskUid(0)).unwrap().reads_shuffle());
    }

    #[test]
    fn detects_duplicate_uid() {
        let mut w = simple_workload();
        w.jobs[0].stages[0].tasks[1].uid = TaskUid(0);
        assert!(matches!(
            w.validate(),
            Err(ValidationError::BadTaskIdentity(_))
        ));
    }

    #[test]
    fn detects_forward_dep() {
        let mut w = simple_workload();
        w.jobs[0].stages[1].deps = vec![1];
        assert!(matches!(
            w.validate(),
            Err(ValidationError::BadStageDep { .. })
        ));
    }

    #[test]
    fn detects_shuffle_from_non_dep() {
        let mut w = simple_workload();
        w.jobs[0].stages[1].deps = vec![];
        assert!(matches!(
            w.validate(),
            Err(ValidationError::ShuffleNotADep { .. })
        ));
    }

    #[test]
    fn detects_unknown_block() {
        let mut w = simple_workload();
        w.num_blocks = 0;
        assert!(matches!(
            w.validate(),
            Err(ValidationError::UnknownBlock(_))
        ));
    }

    #[test]
    fn detects_work_without_demand() {
        let mut w = simple_workload();
        w.jobs[0].stages[0].tasks[0]
            .demand
            .set(Resource::DiskWrite, 0.0);
        assert!(matches!(
            w.validate(),
            Err(ValidationError::WorkWithoutDemand {
                resource: Resource::DiskWrite,
                ..
            })
        ));
    }

    #[test]
    fn detects_negative_demand() {
        let mut w = simple_workload();
        w.jobs[0].stages[0].tasks[0].demand.set(Resource::Cpu, -1.0);
        assert!(matches!(w.validate(), Err(ValidationError::BadDemand(_))));
    }

    #[test]
    fn detects_empty_stage() {
        let mut w = simple_workload();
        w.jobs[0].stages[0].tasks.clear();
        assert!(matches!(w.validate(), Err(ValidationError::Empty(_))));
    }

    #[test]
    fn detects_bad_arrival() {
        let mut w = simple_workload();
        w.jobs[0].arrival = -1.0;
        assert!(matches!(w.validate(), Err(ValidationError::BadArrival(_))));
    }

    #[test]
    fn validation_errors_display() {
        // Every variant renders without panicking.
        let errs: Vec<ValidationError> = vec![
            ValidationError::NonDenseJobId(1),
            ValidationError::BadTaskIdentity(TaskUid(1)),
            ValidationError::BadStageDep {
                job: JobId(0),
                stage: 1,
                dep: 2,
            },
            ValidationError::ShuffleNotADep {
                task: TaskUid(1),
                stage: 0,
            },
            ValidationError::UnknownBlock(BlockId(9)),
            ValidationError::BadDemand(TaskUid(1)),
            ValidationError::WorkWithoutDemand {
                task: TaskUid(1),
                resource: Resource::Cpu,
            },
            ValidationError::BadArrival(JobId(0)),
            ValidationError::Empty(JobId(0)),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
