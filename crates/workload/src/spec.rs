//! Machine-independent workload descriptions: tasks, stages, jobs, DAGs.

use std::collections::HashSet;
use std::fmt;

use tetris_resources::{Resource, ResourceVec};

use crate::ids::{BlockId, JobId, TaskUid};

/// Where a task's input bytes come from.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum InputSource {
    /// A stored (HDFS-style) data block. Replica → machine placement is
    /// decided when the workload is bound to a concrete cluster, so the
    /// workload itself stays machine-independent.
    Stored(BlockId),
    /// Shuffle: read the outputs of an upstream stage (by stage index within
    /// the same job). The set of source machines is known only at runtime —
    /// wherever the upstream tasks actually ran — which is exactly why the
    /// paper's disk/network demands are placement-dependent (§3.1).
    Shuffle {
        /// Index of the upstream stage whose outputs are read.
        stage: usize,
    },
}

/// One input chunk of a task.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InputSpec {
    /// Where the bytes live.
    pub source: InputSource,
    /// How many bytes this task reads from that source.
    pub bytes: f64,
}

/// Static description of one task: peak demands (`d` of paper Table 4) and
/// total work (`f` terms of eqn. 5).
///
/// The *demand* vector holds peak rates (cores, bytes/s) plus peak memory
/// bytes; the *work* quantities ([`TaskSpec::cpu_work`],
/// [`TaskSpec::output_bytes`], input bytes) are what must be processed.
/// A task's runtime is therefore `work / allocated rate`, maximized over
/// dimensions — allocate less than peak and the task stretches, which is how
/// over-allocation by baseline schedulers manifests.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TaskSpec {
    /// Workload-unique task id.
    pub uid: TaskUid,
    /// Owning job.
    pub job: JobId,
    /// Stage index within the job.
    pub stage: usize,
    /// Index within the stage.
    pub index: usize,
    /// True peak resource demands.
    pub demand: ResourceVec,
    /// Total CPU work in core-seconds (`f^cpu`).
    pub cpu_work: f64,
    /// Bytes written to the local disk (`f^diskW`); also the bytes exposed
    /// to downstream shuffle readers.
    pub output_bytes: f64,
    /// Input chunks to read before/while computing.
    pub inputs: Vec<InputSpec>,
}

impl TaskSpec {
    /// Total input bytes across all chunks.
    pub fn input_bytes(&self) -> f64 {
        self.inputs.iter().map(|i| i.bytes).sum()
    }

    /// Lower bound on the task's duration: peak allocation, all inputs
    /// local. This is the `duration` the schedulers *estimate* with
    /// (paper §3.3.1 estimates durations from work and peak demands).
    pub fn ideal_duration(&self) -> f64 {
        let mut d: f64 = 0.0;
        let cpu = self.demand.get(Resource::Cpu);
        if self.cpu_work > 0.0 {
            d = d.max(self.cpu_work / cpu);
        }
        let dw = self.demand.get(Resource::DiskWrite);
        if self.output_bytes > 0.0 {
            d = d.max(self.output_bytes / dw);
        }
        let dr = self.demand.get(Resource::DiskRead);
        let inb = self.input_bytes();
        if inb > 0.0 {
            d = d.max(inb / dr);
        }
        d
    }

    /// The local-view work vector (`f` terms): cpu core-seconds, bytes read
    /// (assuming local input), bytes written.
    pub fn work_vector(&self) -> ResourceVec {
        ResourceVec::zero()
            .with(Resource::Cpu, self.cpu_work)
            .with(Resource::DiskRead, self.input_bytes())
            .with(Resource::DiskWrite, self.output_bytes)
    }

    /// True if any input is a shuffle read.
    pub fn reads_shuffle(&self) -> bool {
        self.inputs
            .iter()
            .any(|i| matches!(i.source, InputSource::Shuffle { .. }))
    }
}

/// Workload class of a job: finite batch analytics (the paper's default)
/// or a long-running service whose replicas must start promptly.
///
/// The class changes what "good scheduling" means. Batch jobs are measured
/// by completion time (JCT, makespan); a service is measured by *placement
/// latency* — how long a replica waits between becoming runnable and
/// actually starting — against its SLO, because a replica that is not
/// running is capacity the service does not have at peak.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum JobClass {
    /// Finite analytics job: runs to completion, then leaves.
    #[default]
    Batch,
    /// Long-running service with latency-sensitive replicas.
    Service {
        /// Placement-latency SLO in seconds: a replica that waits longer
        /// than this before starting counts as an SLO violation.
        slo_latency: f64,
        /// Diurnal load curve the service's replica demand follows
        /// (generators size replica waves from it; reports group
        /// violations by its load points).
        diurnal_curve: DiurnalCurve,
    },
}

impl JobClass {
    /// True for the service variant.
    pub fn is_service(&self) -> bool {
        matches!(self, JobClass::Service { .. })
    }

    /// The placement-latency SLO, if this is a service.
    pub fn slo_latency(&self) -> Option<f64> {
        match self {
            JobClass::Batch => None,
            JobClass::Service { slo_latency, .. } => Some(*slo_latency),
        }
    }
}

/// A periodic load curve: relative load multipliers sampled uniformly over
/// one period, linearly interpolated and wrapping. Services follow one of
/// these (user traffic rises by day, falls by night); generators emit
/// replica waves sized by [`DiurnalCurve::load_at`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiurnalCurve {
    /// Curve period in seconds.
    pub period: f64,
    /// Relative load multipliers (≥ 0), sampled uniformly over the period.
    pub points: Vec<f64>,
}

impl DiurnalCurve {
    /// Constant load 1.0 (a service with no diurnal swing).
    pub fn flat() -> Self {
        DiurnalCurve {
            period: 1.0,
            points: vec![1.0],
        }
    }

    /// Load multiplier at absolute time `t` (linear interpolation between
    /// sample points, wrapping at the period).
    pub fn load_at(&self, t: f64) -> f64 {
        let n = self.points.len();
        if n == 1 {
            return self.points[0];
        }
        let phase = (t.rem_euclid(self.period)) / self.period * n as f64;
        let i = (phase as usize).min(n - 1);
        let frac = phase - i as f64;
        let a = self.points[i];
        let b = self.points[(i + 1) % n];
        a + (b - a) * frac
    }
}

/// Preemption priority of a job. Higher values may evict strictly lower
/// ones when they cannot place ("Priority Matters"-style preemption);
/// equal classes never preempt each other. Valid range is
/// `0..=PriorityClass::MAX` (checked by [`Workload::validate`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PriorityClass(pub u8);

impl PriorityClass {
    /// Highest allowed priority.
    pub const MAX: PriorityClass = PriorityClass(9);
    /// Default batch priority (lowest).
    pub const BATCH: PriorityClass = PriorityClass(0);
    /// Conventional serving priority.
    pub const SERVICE: PriorityClass = PriorityClass(5);

    /// True iff a task of this class may evict a running task of `other`
    /// (strictly greater — equal classes never preempt each other).
    pub fn preempts(self, other: PriorityClass) -> bool {
        self.0 > other.0
    }
}

impl Default for PriorityClass {
    fn default() -> Self {
        PriorityClass::BATCH
    }
}

impl fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Kubernetes-style placement constraints a scheduler must honor for every
/// task of the job. The empty default constrains nothing, so batch
/// workloads are untouched.
///
/// All predicates are evaluated against *running* tasks and the machine
/// taint table — scheduler-visible state only, never simulation ground
/// truth.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct PlacementConstraints {
    /// Affinity: while at least one listed job has a running task, only
    /// machines hosting one are eligible. Vacuous when none runs anywhere,
    /// so the first replica can bootstrap.
    pub affinity: Vec<JobId>,
    /// Anti-affinity: machines hosting a running task of any listed job
    /// are ineligible.
    pub anti_affinity: Vec<JobId>,
    /// Spread floor: the job's running tasks must cover at least this many
    /// distinct machines before any machine may host a *second* task of
    /// the job. Must be ≤ cluster size (checked at bind time by
    /// [`Workload::validate_for_cluster`]).
    pub spread: Option<usize>,
    /// Taint-toleration bitmask: a machine whose `SimConfig::machine_taints`
    /// entry has bits outside this mask is ineligible. Untainted machines
    /// are always eligible; the default `0` tolerates no taints.
    pub tolerations: u64,
}

impl PlacementConstraints {
    /// No constraints (the batch default).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if any job-level predicate is set (taint checks still apply on
    /// tainted clusters — use this only as a hot-path skip on untainted
    /// ones).
    pub fn has_any(&self) -> bool {
        !self.affinity.is_empty() || !self.anti_affinity.is_empty() || self.spread.is_some()
    }

    /// Builder: require co-location with `job`.
    #[must_use]
    pub fn with_affinity(mut self, job: JobId) -> Self {
        self.affinity.push(job);
        self
    }

    /// Builder: forbid co-location with `job`.
    #[must_use]
    pub fn with_anti_affinity(mut self, job: JobId) -> Self {
        self.anti_affinity.push(job);
        self
    }

    /// Builder: require the job to span at least `machines` machines.
    #[must_use]
    pub fn with_spread(mut self, machines: usize) -> Self {
        self.spread = Some(machines);
        self
    }

    /// Builder: tolerate the given taint bits.
    #[must_use]
    pub fn with_tolerations(mut self, mask: u64) -> Self {
        self.tolerations |= mask;
        self
    }
}

/// A stage: a set of tasks doing the same computation over different data
/// partitions, separated from upstream stages by a barrier.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageSpec {
    /// Human-readable name ("map", "reduce", "join-2", ...).
    pub name: String,
    /// Upstream stage indices. All upstream tasks must finish before any
    /// task of this stage starts (strict barrier, paper §2.1/§3.5).
    pub deps: Vec<usize>,
    /// The stage's tasks.
    pub tasks: Vec<TaskSpec>,
}

impl StageSpec {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the stage has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// A job: a DAG of stages plus an arrival time.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Dense job id within the workload.
    pub id: JobId,
    /// Human-readable name.
    pub name: String,
    /// Recurring-job family. Analytics jobs repeat hourly/daily on new data
    /// (paper §4.1); jobs in the same family share demand statistics, which
    /// is what the demand estimator exploits.
    pub family: Option<String>,
    /// Arrival time in seconds from the start of the trace.
    pub arrival: f64,
    /// Workload class: batch analytics or long-running service. Absent in
    /// pre-serving traces, so deserialization defaults to batch.
    #[serde(default)]
    pub class: JobClass,
    /// Preemption priority (default: lowest, the batch class).
    #[serde(default)]
    pub priority: PriorityClass,
    /// Placement constraints (default: none).
    #[serde(default)]
    pub constraints: PlacementConstraints,
    /// Stages in topological order (deps always point backwards).
    pub stages: Vec<StageSpec>,
}

/// Convenience alias: a `Job` is its static spec.
pub type Job = JobSpec;

impl JobSpec {
    /// Total number of tasks across stages.
    pub fn num_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }

    /// Iterate over all tasks of the job.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskSpec> {
        self.stages.iter().flat_map(|s| s.tasks.iter())
    }

    /// Sum of ideal task durations — a crude job-length scale used by
    /// tests and reporting (not the SRTF score, which lives in
    /// `tetris-core`).
    pub fn total_ideal_work_seconds(&self) -> f64 {
        self.tasks().map(|t| t.ideal_duration()).sum()
    }
}

/// A complete workload: jobs plus the universe of stored data blocks their
/// map tasks read.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// Jobs, indexed by [`JobId`].
    pub jobs: Vec<JobSpec>,
    /// Number of distinct stored blocks referenced by `Stored` inputs.
    /// Block → machine replica placement happens at simulation bind time.
    pub num_blocks: usize,
}

/// Error from [`Workload::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// `jobs[i].id != i`.
    NonDenseJobId(usize),
    /// Task uid appears twice or task back-references the wrong job/stage.
    BadTaskIdentity(TaskUid),
    /// Stage dep points at itself or forward (stages must be topo-ordered).
    BadStageDep {
        /// Offending job.
        job: JobId,
        /// Offending stage index.
        stage: usize,
        /// The invalid dependency value.
        dep: usize,
    },
    /// Shuffle input references a stage that is not a declared dependency.
    ShuffleNotADep {
        /// Offending task.
        task: TaskUid,
        /// The referenced stage index.
        stage: usize,
    },
    /// Stored input references a block id `>= num_blocks`.
    UnknownBlock(BlockId),
    /// A demand component is negative or NaN.
    BadDemand(TaskUid),
    /// Task has work along a dimension but zero peak demand for it, so its
    /// duration would be infinite.
    WorkWithoutDemand {
        /// Offending task.
        task: TaskUid,
        /// Dimension with work but no demand.
        resource: Resource,
    },
    /// Negative arrival time.
    BadArrival(JobId),
    /// A job has no stages or a stage has no tasks.
    Empty(JobId),
    /// Priority outside `0..=PriorityClass::MAX`.
    BadPriority(JobId),
    /// Service SLO is zero, negative or NaN.
    BadSlo(JobId),
    /// Diurnal curve has a non-positive period, no points, or a
    /// negative/NaN point.
    BadDiurnal(JobId),
    /// Spread floor of zero (meaningless: every placement spans ≥ 1
    /// machine).
    BadSpread(JobId),
    /// Affinity/anti-affinity references an unknown job or the job itself.
    BadConstraintJob {
        /// Job carrying the constraint.
        job: JobId,
        /// The invalid referenced job.
        target: JobId,
    },
    /// Spread floor exceeds the cluster size the workload is bound to
    /// (only from [`Workload::validate_for_cluster`]).
    SpreadExceedsMachines {
        /// Job carrying the constraint.
        job: JobId,
        /// The requested spread floor.
        spread: usize,
        /// Machines in the target cluster.
        machines: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NonDenseJobId(i) => write!(f, "job at position {i} has wrong id"),
            ValidationError::BadTaskIdentity(t) => write!(f, "task {t} has bad identity"),
            ValidationError::BadStageDep { job, stage, dep } => {
                write!(f, "{job} stage {stage} has invalid dep {dep}")
            }
            ValidationError::ShuffleNotADep { task, stage } => {
                write!(f, "task {task} shuffles from non-dependency stage {stage}")
            }
            ValidationError::UnknownBlock(b) => write!(f, "unknown block {b}"),
            ValidationError::BadDemand(t) => write!(f, "task {t} has negative/NaN demand"),
            ValidationError::WorkWithoutDemand { task, resource } => {
                write!(f, "task {task} has {resource} work but zero demand")
            }
            ValidationError::BadArrival(j) => write!(f, "{j} has negative arrival"),
            ValidationError::Empty(j) => write!(f, "{j} has an empty stage list or stage"),
            ValidationError::BadPriority(j) => {
                write!(f, "{j} priority above {}", PriorityClass::MAX)
            }
            ValidationError::BadSlo(j) => write!(f, "{j} has non-positive SLO latency"),
            ValidationError::BadDiurnal(j) => write!(f, "{j} has an invalid diurnal curve"),
            ValidationError::BadSpread(j) => write!(f, "{j} has a zero spread floor"),
            ValidationError::BadConstraintJob { job, target } => {
                write!(f, "{job} constraint references invalid {target}")
            }
            ValidationError::SpreadExceedsMachines {
                job,
                spread,
                machines,
            } => write!(f, "{job} spread {spread} exceeds cluster size {machines}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl Workload {
    /// Total number of tasks across all jobs.
    pub fn num_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.num_tasks()).sum()
    }

    /// Look up a task by uid (O(#jobs + #stage tasks); build an index if you
    /// need this hot — the simulator does).
    pub fn task(&self, uid: TaskUid) -> Option<&TaskSpec> {
        self.jobs
            .iter()
            .flat_map(|j| j.tasks())
            .find(|t| t.uid == uid)
    }

    /// Iterate over all tasks.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskSpec> {
        self.jobs.iter().flat_map(|j| j.tasks())
    }

    /// Check every structural invariant the simulator relies on.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let mut seen_uids = HashSet::new();
        for (ji, job) in self.jobs.iter().enumerate() {
            if job.id.index() != ji {
                return Err(ValidationError::NonDenseJobId(ji));
            }
            if !(job.arrival >= 0.0) {
                return Err(ValidationError::BadArrival(job.id));
            }
            if job.stages.is_empty() || job.stages.iter().any(|s| s.is_empty()) {
                return Err(ValidationError::Empty(job.id));
            }
            if job.priority > PriorityClass::MAX {
                return Err(ValidationError::BadPriority(job.id));
            }
            if let JobClass::Service {
                slo_latency,
                diurnal_curve,
            } = &job.class
            {
                if !(*slo_latency > 0.0) {
                    return Err(ValidationError::BadSlo(job.id));
                }
                if !(diurnal_curve.period > 0.0)
                    || diurnal_curve.points.is_empty()
                    || diurnal_curve.points.iter().any(|p| !(*p >= 0.0))
                {
                    return Err(ValidationError::BadDiurnal(job.id));
                }
            }
            if job.constraints.spread == Some(0) {
                return Err(ValidationError::BadSpread(job.id));
            }
            for &target in job
                .constraints
                .affinity
                .iter()
                .chain(job.constraints.anti_affinity.iter())
            {
                if target.index() >= self.jobs.len() || target == job.id {
                    return Err(ValidationError::BadConstraintJob {
                        job: job.id,
                        target,
                    });
                }
            }
            for (si, stage) in job.stages.iter().enumerate() {
                for &dep in &stage.deps {
                    if dep >= si {
                        return Err(ValidationError::BadStageDep {
                            job: job.id,
                            stage: si,
                            dep,
                        });
                    }
                }
                for (ti, task) in stage.tasks.iter().enumerate() {
                    if task.job != job.id || task.stage != si || task.index != ti {
                        return Err(ValidationError::BadTaskIdentity(task.uid));
                    }
                    if !seen_uids.insert(task.uid) {
                        return Err(ValidationError::BadTaskIdentity(task.uid));
                    }
                    if task.demand.has_nan() || task.demand.min_component() < 0.0 {
                        return Err(ValidationError::BadDemand(task.uid));
                    }
                    for input in &task.inputs {
                        match input.source {
                            InputSource::Stored(b) => {
                                if b.index() >= self.num_blocks {
                                    return Err(ValidationError::UnknownBlock(b));
                                }
                            }
                            InputSource::Shuffle { stage: up } => {
                                if !stage.deps.contains(&up) {
                                    return Err(ValidationError::ShuffleNotADep {
                                        task: task.uid,
                                        stage: up,
                                    });
                                }
                            }
                        }
                    }
                    // Work along a dimension requires non-zero peak demand.
                    let checks = [
                        (task.cpu_work, Resource::Cpu),
                        (task.output_bytes, Resource::DiskWrite),
                        (task.input_bytes(), Resource::DiskRead),
                    ];
                    for (work, r) in checks {
                        if work > 0.0 && task.demand.get(r) <= 0.0 {
                            return Err(ValidationError::WorkWithoutDemand {
                                task: task.uid,
                                resource: r,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// [`Workload::validate`] plus the bind-time checks that need the
    /// target cluster: a spread floor can only be met on a cluster with at
    /// least that many machines. The simulator calls this when a workload
    /// is bound to a concrete cluster.
    pub fn validate_for_cluster(&self, machines: usize) -> Result<(), ValidationError> {
        self.validate()?;
        for job in &self.jobs {
            if let Some(spread) = job.constraints.spread {
                if spread > machines {
                    return Err(ValidationError::SpreadExceedsMachines {
                        job: job.id,
                        spread,
                        machines,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::units::{GB, MB};

    fn simple_task(uid: usize, job: usize, stage: usize, index: usize) -> TaskSpec {
        TaskSpec {
            uid: TaskUid(uid),
            job: JobId(job),
            stage,
            index,
            demand: ResourceVec::zero()
                .with(Resource::Cpu, 1.0)
                .with(Resource::Mem, 2.0 * GB)
                .with(Resource::DiskRead, 50.0 * MB)
                .with(Resource::DiskWrite, 50.0 * MB),
            cpu_work: 30.0,
            output_bytes: 100.0 * MB,
            inputs: vec![InputSpec {
                source: InputSource::Stored(BlockId(0)),
                bytes: 200.0 * MB,
            }],
        }
    }

    fn simple_workload() -> Workload {
        let map = StageSpec {
            name: "map".into(),
            deps: vec![],
            tasks: vec![simple_task(0, 0, 0, 0), simple_task(1, 0, 0, 1)],
        };
        let mut rt = simple_task(2, 0, 1, 0);
        rt.inputs = vec![InputSpec {
            source: InputSource::Shuffle { stage: 0 },
            bytes: 150.0 * MB,
        }];
        let reduce = StageSpec {
            name: "reduce".into(),
            deps: vec![0],
            tasks: vec![rt],
        };
        Workload {
            jobs: vec![JobSpec {
                id: JobId(0),
                name: "job0".into(),
                family: None,
                arrival: 0.0,
                class: JobClass::Batch,
                priority: PriorityClass::default(),
                constraints: PlacementConstraints::none(),
                stages: vec![map, reduce],
            }],
            num_blocks: 1,
        }
    }

    #[test]
    fn valid_workload_passes() {
        assert_eq!(simple_workload().validate(), Ok(()));
    }

    #[test]
    fn ideal_duration_is_bottleneck() {
        let t = simple_task(0, 0, 0, 0);
        // cpu: 30s; read: 200MB/50MBps = 4s; write: 100/50 = 2s → 30s.
        assert!((t.ideal_duration() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_duration_io_bound() {
        let mut t = simple_task(0, 0, 0, 0);
        t.cpu_work = 1.0;
        assert!((t.ideal_duration() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn counts() {
        let w = simple_workload();
        assert_eq!(w.num_tasks(), 3);
        assert_eq!(w.jobs[0].num_tasks(), 3);
        assert!(w.task(TaskUid(2)).unwrap().reads_shuffle());
        assert!(!w.task(TaskUid(0)).unwrap().reads_shuffle());
    }

    #[test]
    fn detects_duplicate_uid() {
        let mut w = simple_workload();
        w.jobs[0].stages[0].tasks[1].uid = TaskUid(0);
        assert!(matches!(
            w.validate(),
            Err(ValidationError::BadTaskIdentity(_))
        ));
    }

    #[test]
    fn detects_forward_dep() {
        let mut w = simple_workload();
        w.jobs[0].stages[1].deps = vec![1];
        assert!(matches!(
            w.validate(),
            Err(ValidationError::BadStageDep { .. })
        ));
    }

    #[test]
    fn detects_shuffle_from_non_dep() {
        let mut w = simple_workload();
        w.jobs[0].stages[1].deps = vec![];
        assert!(matches!(
            w.validate(),
            Err(ValidationError::ShuffleNotADep { .. })
        ));
    }

    #[test]
    fn detects_unknown_block() {
        let mut w = simple_workload();
        w.num_blocks = 0;
        assert!(matches!(
            w.validate(),
            Err(ValidationError::UnknownBlock(_))
        ));
    }

    #[test]
    fn detects_work_without_demand() {
        let mut w = simple_workload();
        w.jobs[0].stages[0].tasks[0]
            .demand
            .set(Resource::DiskWrite, 0.0);
        assert!(matches!(
            w.validate(),
            Err(ValidationError::WorkWithoutDemand {
                resource: Resource::DiskWrite,
                ..
            })
        ));
    }

    #[test]
    fn detects_negative_demand() {
        let mut w = simple_workload();
        w.jobs[0].stages[0].tasks[0].demand.set(Resource::Cpu, -1.0);
        assert!(matches!(w.validate(), Err(ValidationError::BadDemand(_))));
    }

    #[test]
    fn detects_empty_stage() {
        let mut w = simple_workload();
        w.jobs[0].stages[0].tasks.clear();
        assert!(matches!(w.validate(), Err(ValidationError::Empty(_))));
    }

    #[test]
    fn detects_bad_arrival() {
        let mut w = simple_workload();
        w.jobs[0].arrival = -1.0;
        assert!(matches!(w.validate(), Err(ValidationError::BadArrival(_))));
    }

    #[test]
    fn detects_bad_priority() {
        let mut w = simple_workload();
        w.jobs[0].priority = PriorityClass(PriorityClass::MAX.0 + 1);
        assert!(matches!(w.validate(), Err(ValidationError::BadPriority(_))));
    }

    #[test]
    fn detects_bad_slo() {
        let mut w = simple_workload();
        w.jobs[0].class = JobClass::Service {
            slo_latency: 0.0,
            diurnal_curve: DiurnalCurve::flat(),
        };
        assert!(matches!(w.validate(), Err(ValidationError::BadSlo(_))));
    }

    #[test]
    fn detects_bad_diurnal_curve() {
        let mut w = simple_workload();
        for curve in [
            DiurnalCurve {
                period: 0.0,
                points: vec![1.0],
            },
            DiurnalCurve {
                period: 10.0,
                points: vec![],
            },
            DiurnalCurve {
                period: 10.0,
                points: vec![1.0, -0.5],
            },
        ] {
            w.jobs[0].class = JobClass::Service {
                slo_latency: 5.0,
                diurnal_curve: curve,
            };
            assert!(matches!(w.validate(), Err(ValidationError::BadDiurnal(_))));
        }
    }

    #[test]
    fn detects_zero_spread() {
        let mut w = simple_workload();
        w.jobs[0].constraints.spread = Some(0);
        assert!(matches!(w.validate(), Err(ValidationError::BadSpread(_))));
    }

    #[test]
    fn detects_bad_constraint_target() {
        let mut w = simple_workload();
        // Unknown job.
        w.jobs[0].constraints.anti_affinity = vec![JobId(7)];
        assert!(matches!(
            w.validate(),
            Err(ValidationError::BadConstraintJob { .. })
        ));
        // Self-reference.
        w.jobs[0].constraints.anti_affinity.clear();
        w.jobs[0].constraints.affinity = vec![JobId(0)];
        assert!(matches!(
            w.validate(),
            Err(ValidationError::BadConstraintJob { .. })
        ));
    }

    #[test]
    fn spread_checked_against_cluster() {
        let mut w = simple_workload();
        w.jobs[0].constraints.spread = Some(5);
        assert_eq!(w.validate(), Ok(()));
        assert!(matches!(
            w.validate_for_cluster(3),
            Err(ValidationError::SpreadExceedsMachines {
                spread: 5,
                machines: 3,
                ..
            })
        ));
        assert_eq!(w.validate_for_cluster(5), Ok(()));
    }

    #[test]
    fn valid_service_job_passes() {
        let mut w = simple_workload();
        w.jobs[0].class = JobClass::Service {
            slo_latency: 10.0,
            diurnal_curve: DiurnalCurve {
                period: 3600.0,
                points: vec![0.2, 1.0, 0.6],
            },
        };
        w.jobs[0].priority = PriorityClass::SERVICE;
        w.jobs[0].constraints = PlacementConstraints::none().with_spread(2);
        assert_eq!(w.validate(), Ok(()));
        assert!(w.jobs[0].class.is_service());
        assert_eq!(w.jobs[0].class.slo_latency(), Some(10.0));
    }

    #[test]
    fn priority_preempts_is_strict() {
        assert!(PriorityClass::SERVICE.preempts(PriorityClass::BATCH));
        assert!(!PriorityClass::BATCH.preempts(PriorityClass::BATCH));
        assert!(!PriorityClass::BATCH.preempts(PriorityClass::SERVICE));
    }

    #[test]
    fn diurnal_curve_interpolates_and_wraps() {
        let c = DiurnalCurve {
            period: 100.0,
            points: vec![0.0, 1.0],
        };
        assert!((c.load_at(0.0) - 0.0).abs() < 1e-9);
        assert!((c.load_at(25.0) - 0.5).abs() < 1e-9);
        // Second half interpolates back toward points[0] (wrap).
        assert!((c.load_at(75.0) - 0.5).abs() < 1e-9);
        assert!((c.load_at(125.0) - 0.5).abs() < 1e-9);
        assert_eq!(DiurnalCurve::flat().load_at(123.0), 1.0);
    }

    #[test]
    fn constraints_builder_and_emptiness() {
        let c = PlacementConstraints::none();
        assert!(!c.has_any());
        let c = c
            .with_affinity(JobId(1))
            .with_anti_affinity(JobId(2))
            .with_spread(3)
            .with_tolerations(0b101);
        assert!(c.has_any());
        assert_eq!(c.affinity, vec![JobId(1)]);
        assert_eq!(c.anti_affinity, vec![JobId(2)]);
        assert_eq!(c.spread, Some(3));
        assert_eq!(c.tolerations, 0b101);
    }

    #[test]
    fn validation_errors_display() {
        // Every variant renders without panicking.
        let errs: Vec<ValidationError> = vec![
            ValidationError::NonDenseJobId(1),
            ValidationError::BadTaskIdentity(TaskUid(1)),
            ValidationError::BadStageDep {
                job: JobId(0),
                stage: 1,
                dep: 2,
            },
            ValidationError::ShuffleNotADep {
                task: TaskUid(1),
                stage: 0,
            },
            ValidationError::UnknownBlock(BlockId(9)),
            ValidationError::BadDemand(TaskUid(1)),
            ValidationError::WorkWithoutDemand {
                task: TaskUid(1),
                resource: Resource::Cpu,
            },
            ValidationError::BadArrival(JobId(0)),
            ValidationError::Empty(JobId(0)),
            ValidationError::BadPriority(JobId(0)),
            ValidationError::BadSlo(JobId(0)),
            ValidationError::BadDiurnal(JobId(0)),
            ValidationError::BadSpread(JobId(0)),
            ValidationError::BadConstraintJob {
                job: JobId(0),
                target: JobId(1),
            },
            ValidationError::SpreadExceedsMachines {
                job: JobId(0),
                spread: 4,
                machines: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
