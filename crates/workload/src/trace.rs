//! Trace (de)serialization.
//!
//! Workloads round-trip to a versioned JSON envelope. This serves two
//! purposes from the paper: (a) recurring jobs — "Tetris uses task
//! statistics measured in prior runs of the job" (§4.1) — need prior runs
//! stored somewhere, and (b) experiments must be replayable bit-for-bit.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::spec::Workload;

/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;

/// Versioned envelope around a workload.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TraceFile {
    /// Format version (must equal [`TRACE_VERSION`]).
    pub version: u32,
    /// Free-form provenance note (generator name, seed, date).
    pub provenance: String,
    /// The workload itself.
    pub workload: Workload,
}

/// Errors from trace IO.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Version mismatch.
    Version {
        /// Version found in the file.
        found: u32,
    },
    /// The decoded workload failed validation.
    Invalid(crate::ValidationError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::Json(e) => write!(f, "trace json error: {e}"),
            TraceError::Version { found } => {
                write!(f, "trace version {found}, expected {TRACE_VERSION}")
            }
            TraceError::Invalid(e) => write!(f, "trace contains invalid workload: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

/// Serialize a workload (with provenance) to a JSON string.
pub fn to_json(workload: &Workload, provenance: &str) -> Result<String, TraceError> {
    let tf = TraceFile {
        version: TRACE_VERSION,
        provenance: provenance.to_string(),
        workload: workload.clone(),
    };
    Ok(serde_json::to_string(&tf)?)
}

/// Decode a workload from a JSON string, checking version and validity.
pub fn from_json(s: &str) -> Result<TraceFile, TraceError> {
    let tf: TraceFile = serde_json::from_str(s)?;
    if tf.version != TRACE_VERSION {
        return Err(TraceError::Version { found: tf.version });
    }
    tf.workload.validate().map_err(TraceError::Invalid)?;
    Ok(tf)
}

/// Write a workload to a file.
pub fn save(
    path: impl AsRef<Path>,
    workload: &Workload,
    provenance: &str,
) -> Result<(), TraceError> {
    let tf = TraceFile {
        version: TRACE_VERSION,
        provenance: provenance.to_string(),
        workload: workload.clone(),
    };
    let mut w = BufWriter::new(File::create(path)?);
    serde_json::to_writer(&mut w, &tf)?;
    w.flush()?;
    Ok(())
}

/// Load a workload from a file.
pub fn load(path: impl AsRef<Path>) -> Result<TraceFile, TraceError> {
    let mut s = String::new();
    BufReader::new(File::open(path)?).read_to_string(&mut s)?;
    from_json(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSuiteConfig;

    #[test]
    fn json_roundtrip() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let s = to_json(&w, "suite small seed=3").unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(back.workload, w);
        assert_eq!(back.provenance, "suite small seed=3");
    }

    #[test]
    fn file_roundtrip() {
        let w = WorkloadSuiteConfig::small().generate(4);
        let dir = std::env::temp_dir().join("tetris-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.json");
        save(&path, &w, "test").unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.workload, w);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_version() {
        let w = WorkloadSuiteConfig::small().generate(5);
        let s = to_json(&w, "x")
            .unwrap()
            .replacen("\"version\":1", "\"version\":999", 1);
        assert!(matches!(
            from_json(&s),
            Err(TraceError::Version { found: 999 })
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(from_json("not json"), Err(TraceError::Json(_))));
    }

    #[test]
    fn rejects_invalid_workload() {
        let mut w = WorkloadSuiteConfig::small().generate(6);
        let s = {
            w.jobs[0].arrival = -5.0;
            let tf = TraceFile {
                version: TRACE_VERSION,
                provenance: String::new(),
                workload: w,
            };
            serde_json::to_string(&tf).unwrap()
        };
        assert!(matches!(from_json(&s), Err(TraceError::Invalid(_))));
    }

    #[test]
    fn errors_display() {
        let e = TraceError::Version { found: 2 };
        assert!(e.to_string().contains("version 2"));
    }
}
