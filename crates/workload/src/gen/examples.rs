//! Hand-constructed example workloads from the paper's text.

use tetris_resources::units::{gbps, GB, MB};

use crate::gen::builder::{TaskParams, WorkloadBuilder};
use crate::spec::{InputSource, InputSpec, Workload};

/// The Figure-1 motivating example, plus the constants needed to interpret
/// its results.
///
/// Three jobs on an 18-core / 36 GB / 3 Gbps cluster, each with a map phase
/// and a network-bound reduce phase behind a barrier:
///
/// * job A: 18 map tasks of (1 core, 2 GB);
/// * jobs B, C: 6 map tasks of (3 cores, 1 GB) each;
/// * all jobs: 3 reduce tasks needing 1 Gbps of network and negligible
///   CPU/memory.
///
/// All tasks run for `t` time units. DRF finishes every job at `6t`; a
/// packing schedule finishes them at `2t, 3t, 4t` in some job order —
/// better for *every* job.
#[derive(Debug, Clone)]
pub struct MotivatingExample {
    /// The workload (jobs A, B, C in ids 0, 1, 2).
    pub workload: Workload,
    /// The task duration `t` in seconds.
    pub t: f64,
}

/// Build the Figure-1 workload with task length `t` seconds.
///
/// Sizing notes (the paper's example abstracts IO away; we make it
/// concrete): each reduce task pulls `1 Gbps × t` bytes of *remote* shuffle
/// data, so that running alone on a machine it streams at exactly its
/// 1 Gbps network demand for `t` seconds, and three co-located reduces
/// contend 3:1 and take `3t` — reproducing the paper's DRF timeline.
/// Map outputs are sized so the per-job shuffle volume matches, and map
/// inputs/disks are sized to never be the bottleneck.
pub fn motivating_example(t: f64) -> MotivatingExample {
    let nic = gbps(1.0); // 125 MB/s

    // On a 3-machine cluster (one third of the aggregate each), a reduce
    // reads uniformly from all 3 machines: 2/3 of its input is remote.
    // Remote bytes must equal nic × t  ⇒  input = 1.5 × nic × t.
    let reduce_in = 1.5 * nic * t;
    let shuffle_per_job = 3.0 * reduce_in;

    let mut b = WorkloadBuilder::new();

    let add_job = |b: &mut WorkloadBuilder, name: &str, n_maps: usize, cores: f64, mem: f64| {
        let job = b.begin_job(name, None, 0.0);
        let map_out = shuffle_per_job / n_maps as f64;
        let inputs: Vec<InputSpec> = (0..n_maps).map(|_| b.stored_input(128.0 * MB)).collect();
        b.add_stage(job, "map", vec![], n_maps, |i| TaskParams {
            cores,
            mem,
            duration: t,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![inputs[i]],
            output_bytes: map_out,
            remote_frac: 1.0,
        });
        b.add_stage(job, "reduce", vec![0], 3, |_| TaskParams {
            // "very little CPU or memory": exactly zero, as in the paper's
            // idealized example.
            cores: 0.0,
            mem: 0.0,
            duration: t,
            cpu_frac: 0.0,
            io_burst: 1.0,
            inputs: vec![InputSpec {
                source: InputSource::Shuffle { stage: 0 },
                bytes: reduce_in,
            }],
            output_bytes: 0.1 * reduce_in,
            // On the 3-machine cluster two thirds of the shuffle input is
            // remote, so peak NetIn = (2/3) × in/t = exactly 1 Gbps.
            remote_frac: 2.0 / 3.0,
        });
    };

    add_job(&mut b, "A", 18, 1.0, 2.0 * GB);
    add_job(&mut b, "B", 6, 3.0, 1.0 * GB);
    add_job(&mut b, "C", 6, 3.0, 1.0 * GB);

    MotivatingExample {
        workload: b.finish(),
        t,
    }
}

/// The §3.3 example showing that packing efficiency alone does not minimize
/// average job completion time: on machines of 16 cores / 32 GB, job 0 has
/// `n_big` tasks of (16 cores, 16 GB) — perfectly aligned, scheduled first
/// by pure packing — while job 1 has `n_small` tasks of (8 cores, 8 GB).
/// With equal durations, running the *small* job first lowers the average.
pub fn two_job_packing_example(n_big: usize, n_small: usize, t: f64) -> Workload {
    let mut b = WorkloadBuilder::new();
    let j0 = b.begin_job("big-tasks", None, 0.0);
    b.add_stage(j0, "work", vec![], n_big, |_| TaskParams {
        cores: 16.0,
        mem: 16.0 * GB,
        duration: t,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let j1 = b.begin_job("small-tasks", None, 0.0);
    b.add_stage(j1, "work", vec![], n_small, |_| TaskParams {
        cores: 8.0,
        mem: 8.0 * GB,
        duration: t,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    b.finish()
}

/// A diamond DAG: `extract → {transform-a, transform-b} → join`, where the
/// join stage depends on **both** middle stages. Exercises multi-dependency
/// barriers (every other generator produces chains).
///
/// All stages have `n` tasks of `t` seconds (1 core, 1 GB), with data
/// flowing along every edge.
pub fn diamond_dag(n: usize, t: f64) -> Workload {
    use tetris_resources::units::GB;
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("diamond", None, 0.0);
    let inputs: Vec<InputSpec> = (0..n).map(|_| b.stored_input(64.0 * MB)).collect();
    let base = |inputs: Vec<InputSpec>, out: f64| TaskParams {
        cores: 1.0,
        mem: GB,
        duration: t,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs,
        output_bytes: out,
        remote_frac: 1.0,
    };
    // Stage 0: extract.
    b.add_stage(j, "extract", vec![], n, |i| {
        base(vec![inputs[i]], 64.0 * MB)
    });
    let per_task = 64.0 * MB * n as f64 / n as f64;
    // Stages 1, 2: two independent transforms of the extract output.
    for name in ["transform-a", "transform-b"] {
        b.add_stage(j, name, vec![0], n, |_| {
            base(
                vec![InputSpec {
                    source: InputSource::Shuffle { stage: 0 },
                    bytes: per_task,
                }],
                32.0 * MB,
            )
        });
    }
    // Stage 3: join — blocked on BOTH transforms.
    b.add_stage(j, "join", vec![1, 2], n, |_| {
        base(
            vec![
                InputSpec {
                    source: InputSource::Shuffle { stage: 1 },
                    bytes: 32.0 * MB,
                },
                InputSpec {
                    source: InputSource::Shuffle { stage: 2 },
                    bytes: 32.0 * MB,
                },
            ],
            8.0 * MB,
        )
    });
    b.finish()
}

#[cfg(test)]
mod diamond_tests {
    use super::*;

    #[test]
    fn diamond_shape_is_valid() {
        let w = diamond_dag(4, 10.0);
        assert!(w.validate().is_ok());
        assert_eq!(w.jobs[0].stages.len(), 4);
        assert_eq!(w.jobs[0].stages[3].deps, vec![1, 2]);
        assert_eq!(w.num_tasks(), 16);
    }

    #[test]
    fn join_reads_both_transforms() {
        let w = diamond_dag(2, 5.0);
        let join = &w.jobs[0].stages[3].tasks[0];
        assert_eq!(join.inputs.len(), 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::Resource;

    #[test]
    fn fig1_shape() {
        let ex = motivating_example(10.0);
        let w = &ex.workload;
        assert!(w.validate().is_ok());
        assert_eq!(w.jobs.len(), 3);
        assert_eq!(w.jobs[0].stages[0].len(), 18);
        assert_eq!(w.jobs[1].stages[0].len(), 6);
        assert_eq!(w.jobs[2].stages[0].len(), 6);
        for j in &w.jobs {
            assert_eq!(j.stages[1].len(), 3);
        }
    }

    #[test]
    fn fig1_map_demands() {
        let ex = motivating_example(10.0);
        let a_map = &ex.workload.jobs[0].stages[0].tasks[0];
        assert_eq!(a_map.demand.get(Resource::Cpu), 1.0);
        assert_eq!(a_map.demand.get(Resource::Mem), 2.0 * GB);
        let b_map = &ex.workload.jobs[1].stages[0].tasks[0];
        assert_eq!(b_map.demand.get(Resource::Cpu), 3.0);
        assert_eq!(b_map.demand.get(Resource::Mem), 1.0 * GB);
    }

    #[test]
    fn fig1_reduce_is_network_bound() {
        let ex = motivating_example(10.0);
        let r = &ex.workload.jobs[0].stages[1].tasks[0];
        assert_eq!(r.demand.get(Resource::Cpu), 0.0);
        assert_eq!(r.demand.get(Resource::Mem), 0.0);
        // Peak network-in demand ≈ 1.5 Gbps... the remote *portion* streams
        // at up to the NIC's 1 Gbps given per-source caps; the key property
        // is that the demand is network-dominant and ≥ 1 Gbps.
        assert!(r.demand.get(Resource::NetIn) >= gbps(1.0) - 1.0);
        assert!(r.reads_shuffle());
    }

    #[test]
    fn fig1_shuffle_volume_conserved() {
        let ex = motivating_example(10.0);
        for j in &ex.workload.jobs {
            let map_out: f64 = j.stages[0].tasks.iter().map(|t| t.output_bytes).sum();
            let red_in: f64 = j.stages[1].tasks.iter().map(|t| t.input_bytes()).sum();
            assert!((map_out - red_in).abs() < 1.0);
        }
    }

    #[test]
    fn fig1_maps_fill_cluster_exactly() {
        // A's maps: 18 × (1 core, 2 GB) = the whole 18-core/36 GB cluster.
        let ex = motivating_example(10.0);
        let total: f64 = ex.workload.jobs[0].stages[0]
            .tasks
            .iter()
            .map(|t| t.demand.get(Resource::Cpu))
            .sum();
        assert_eq!(total, 18.0);
        let mem: f64 = ex.workload.jobs[0].stages[0]
            .tasks
            .iter()
            .map(|t| t.demand.get(Resource::Mem))
            .sum();
        assert_eq!(mem, 36.0 * GB);
    }

    #[test]
    fn two_job_example_shape() {
        let w = two_job_packing_example(6, 2, 10.0);
        assert!(w.validate().is_ok());
        assert_eq!(w.jobs[0].num_tasks(), 6);
        assert_eq!(w.jobs[1].num_tasks(), 2);
    }
}
