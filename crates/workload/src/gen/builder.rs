//! Low-level construction helpers shared by all generators.

use tetris_resources::{Resource, ResourceVec};

use crate::ids::{BlockId, JobId, TaskUid};
use crate::spec::{
    DiurnalCurve, InputSource, InputSpec, JobClass, JobSpec, PlacementConstraints, PriorityClass,
    StageSpec, TaskSpec, Workload,
};

/// Parameters describing one task to be built.
///
/// The builder derives a *consistent* demand/work pair from these: IO rate
/// demands are sized so that streaming the task's bytes takes
/// `duration / io_burst` seconds, and CPU work is `cores × duration ×
/// cpu_frac`. A CPU-bound task therefore has `cpu_frac = 1` and
/// `io_burst > 1` (its peak IO demands are low relative to its duration —
/// the paper's "tasks do substantial computation per data read and hence
/// have low peak I/O demands"), while an IO-bound task has `io_burst = 1`
/// and `cpu_frac < 1`.
#[derive(Debug, Clone)]
pub struct TaskParams {
    /// Peak CPU demand in cores.
    pub cores: f64,
    /// Peak memory in bytes.
    pub mem: f64,
    /// Target duration in seconds when run at peak allocation.
    pub duration: f64,
    /// Fraction of `duration` the CPU is busy (`cpu_work = cores × duration
    /// × cpu_frac`).
    pub cpu_frac: f64,
    /// IO burstiness: peak IO rates are `bytes / (duration / io_burst)`.
    pub io_burst: f64,
    /// Input chunks.
    pub inputs: Vec<InputSpec>,
    /// Bytes written to local disk.
    pub output_bytes: f64,
    /// Expected fraction of input read remotely; scales the peak NetIn
    /// demand (a shuffle reader on an `N`-machine cluster reads about
    /// `(N-1)/N` of its input over the network). Use `1.0` when unknown —
    /// over-estimating is safer than under-estimating (paper §4.1).
    pub remote_frac: f64,
}

impl TaskParams {
    /// Derive the task's peak-demand vector.
    pub fn demand(&self) -> ResourceVec {
        let mut d = ResourceVec::zero()
            .with(
                Resource::Cpu,
                if self.cpu_work() > 0.0 {
                    self.cores
                } else {
                    0.0
                },
            )
            .with(Resource::Mem, self.mem);
        let io_time = (self.duration / self.io_burst).max(1e-6);
        let in_bytes: f64 = self.inputs.iter().map(|i| i.bytes).sum();
        if in_bytes > 0.0 {
            let rate = in_bytes / io_time;
            d.set(Resource::DiskRead, rate);
            // Peak remote-read rate.
            d.set(Resource::NetIn, rate * self.remote_frac);
        }
        if self.output_bytes > 0.0 {
            d.set(Resource::DiskWrite, self.output_bytes / io_time);
        }
        d
    }

    /// CPU work in core-seconds.
    pub fn cpu_work(&self) -> f64 {
        self.cores * self.duration * self.cpu_frac
    }
}

/// Incrementally builds a [`Workload`], handing out dense task uids and
/// block ids.
#[derive(Debug, Default)]
pub struct WorkloadBuilder {
    jobs: Vec<JobSpec>,
    next_uid: usize,
    next_block: usize,
    demand_cap: Option<ResourceVec>,
}

impl WorkloadBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clamp every generated task's peak demand component-wise to `cap`
    /// (normally a machine profile's capacity). A task whose peak demand
    /// exceeds every machine is unschedulable for any feasibility-
    /// respecting policy, so generators must never emit one; clamping the
    /// peak *rate* simply means the task streams its bytes for longer.
    #[must_use]
    pub fn with_demand_cap(mut self, cap: ResourceVec) -> Self {
        self.demand_cap = Some(cap);
        self
    }

    /// Allocate a new stored data block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        id
    }

    /// Convenience: an input spec reading `bytes` from a freshly allocated
    /// block (the common map-task pattern: one task, one block).
    pub fn stored_input(&mut self, bytes: f64) -> InputSpec {
        InputSpec {
            source: InputSource::Stored(self.new_block()),
            bytes,
        }
    }

    /// Start building a job; returns its id.
    pub fn begin_job(
        &mut self,
        name: impl Into<String>,
        family: Option<String>,
        arrival: f64,
    ) -> JobId {
        let id = JobId(self.jobs.len());
        self.jobs.push(JobSpec {
            id,
            name: name.into(),
            family,
            arrival,
            class: JobClass::Batch,
            priority: PriorityClass::default(),
            constraints: PlacementConstraints::none(),
            stages: Vec::new(),
        });
        id
    }

    /// Set the workload class of a job begun earlier (default: batch).
    pub fn set_class(&mut self, job: JobId, class: JobClass) {
        self.jobs[job.index()].class = class;
    }

    /// Set the preemption priority of a job begun earlier (default:
    /// [`PriorityClass::BATCH`]).
    pub fn set_priority(&mut self, job: JobId, priority: PriorityClass) {
        self.jobs[job.index()].priority = priority;
    }

    /// Set the placement constraints of a job begun earlier (default:
    /// none).
    pub fn set_constraints(&mut self, job: JobId, constraints: PlacementConstraints) {
        self.jobs[job.index()].constraints = constraints;
    }

    /// Convenience: start a service job with its class, priority and
    /// constraints in one call.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_service_job(
        &mut self,
        name: impl Into<String>,
        family: Option<String>,
        arrival: f64,
        priority: PriorityClass,
        slo_latency: f64,
        diurnal_curve: DiurnalCurve,
        constraints: PlacementConstraints,
    ) -> JobId {
        let id = self.begin_job(name, family, arrival);
        self.set_class(
            id,
            JobClass::Service {
                slo_latency,
                diurnal_curve,
            },
        );
        self.set_priority(id, priority);
        self.set_constraints(id, constraints);
        id
    }

    /// Append a stage of `n` tasks to job `job`, each built from the params
    /// returned by `make(task_index)`. Returns the stage index.
    pub fn add_stage(
        &mut self,
        job: JobId,
        name: impl Into<String>,
        deps: Vec<usize>,
        n: usize,
        mut make: impl FnMut(usize) -> TaskParams,
    ) -> usize {
        assert!(n > 0, "stage must have at least one task");
        let job_spec = &mut self.jobs[job.index()];
        let stage_idx = job_spec.stages.len();
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n {
            let p = make(i);
            let mut demand = p.demand();
            if let Some(cap) = &self.demand_cap {
                demand = demand.min(cap);
            }
            tasks.push(TaskSpec {
                uid: TaskUid(self.next_uid),
                job,
                stage: stage_idx,
                index: i,
                demand,
                cpu_work: p.cpu_work(),
                output_bytes: p.output_bytes,
                inputs: p.inputs,
            });
            self.next_uid += 1;
        }
        job_spec.stages.push(StageSpec {
            name: name.into(),
            deps,
            tasks,
        });
        stage_idx
    }

    /// Finish: validate and return the workload.
    ///
    /// # Panics
    /// If the built workload violates a structural invariant — generators
    /// are supposed to be correct by construction, so this is a bug guard,
    /// not an input-validation path.
    pub fn finish(self) -> Workload {
        let w = Workload {
            jobs: self.jobs,
            num_blocks: self.next_block,
        };
        if let Err(e) = w.validate() {
            panic!("generator produced invalid workload: {e}");
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::units::{GB, MB};

    fn params(inputs: Vec<InputSpec>) -> TaskParams {
        TaskParams {
            cores: 2.0,
            mem: 4.0 * GB,
            duration: 20.0,
            cpu_frac: 1.0,
            io_burst: 2.0,
            inputs,
            output_bytes: 100.0 * MB,
            remote_frac: 1.0,
        }
    }

    #[test]
    fn demand_derivation_cpu_bound() {
        let mut b = WorkloadBuilder::new();
        let input = b.stored_input(200.0 * MB);
        let p = params(vec![input]);
        let d = p.demand();
        assert_eq!(d.get(Resource::Cpu), 2.0);
        assert_eq!(p.cpu_work(), 40.0);
        // IO must stream in duration/io_burst = 10s.
        assert!((d.get(Resource::DiskRead) - 20.0 * MB).abs() < 1.0);
        assert!((d.get(Resource::DiskWrite) - 10.0 * MB).abs() < 1.0);
        assert_eq!(d.get(Resource::NetIn), d.get(Resource::DiskRead));
    }

    #[test]
    fn zero_io_task_has_no_io_demand() {
        let p = TaskParams {
            inputs: vec![],
            output_bytes: 0.0,
            ..params(vec![])
        };
        let d = p.demand();
        assert_eq!(d.get(Resource::DiskRead), 0.0);
        assert_eq!(d.get(Resource::DiskWrite), 0.0);
        assert_eq!(d.get(Resource::NetIn), 0.0);
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = WorkloadBuilder::new();
        let j0 = b.begin_job("a", None, 0.0);
        let in0 = b.stored_input(MB);
        let in1 = b.stored_input(MB);
        b.add_stage(j0, "map", vec![], 2, |i| {
            let input = if i == 0 { in0 } else { in1 };
            TaskParams {
                inputs: vec![input],
                ..params(vec![])
            }
        });
        let j1 = b.begin_job("b", None, 5.0);
        b.add_stage(j1, "map", vec![], 1, |_| TaskParams {
            inputs: vec![],
            output_bytes: 0.0,
            ..params(vec![])
        });
        let w = b.finish();
        assert_eq!(w.jobs.len(), 2);
        assert_eq!(w.num_blocks, 2);
        assert_eq!(w.num_tasks(), 3);
        let uids: Vec<usize> = w.tasks().map(|t| t.uid.index()).collect();
        assert_eq!(uids, vec![0, 1, 2]);
    }

    #[test]
    fn built_tasks_ideal_duration_matches_target() {
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("a", None, 0.0);
        let input = b.stored_input(200.0 * MB);
        b.add_stage(j, "map", vec![], 1, |_| params(vec![input]));
        let w = b.finish();
        let t = w.task(TaskUid(0)).unwrap();
        // cpu-bound: cpu_work/cores = 20s dominates the 10s IO streams.
        assert!((t.ideal_duration() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_stage_panics() {
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("a", None, 0.0);
        b.add_stage(j, "map", vec![], 0, |_| unreachable!());
    }
}
