//! The deployment workload suite of paper §5.1.
//!
//! "We constructed a workload suite of over 200 jobs by picking uniformly at
//! random from the following choices. Job size (number of tasks) and the
//! selectivity of map and reduce tasks are chosen from one of four choices:
//! large & highly-selective, medium & inflating, medium & selective and,
//! small & selective. [...] A map- or reduce-stage could either have tasks
//! of high-mem or low-mem. Similarly the stage could either have tasks with
//! high-cpu or low-cpu [...]. Job arrival time is uniformly picked at random
//! between [0:1000]s."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tetris_resources::units::{GB, MB};
use tetris_resources::MachineSpec;

use crate::gen::builder::{TaskParams, WorkloadBuilder};
use crate::spec::{InputSource, InputSpec, Workload};

/// The four job classes of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSizeClass {
    /// ~2000 tasks, output:input = 0.1.
    LargeHighlySelective,
    /// ~500 tasks, output:input = 2.0.
    MediumInflating,
    /// ~500 tasks, output:input = 0.5.
    MediumSelective,
    /// ~100 tasks, output:input = 0.5.
    SmallSelective,
}

impl JobSizeClass {
    /// All classes, picked uniformly at random by the generator.
    pub const ALL: [JobSizeClass; 4] = [
        JobSizeClass::LargeHighlySelective,
        JobSizeClass::MediumInflating,
        JobSizeClass::MediumSelective,
        JobSizeClass::SmallSelective,
    ];

    /// Number of map tasks before scaling.
    pub fn map_tasks(self) -> usize {
        match self {
            JobSizeClass::LargeHighlySelective => 2000,
            JobSizeClass::MediumInflating | JobSizeClass::MediumSelective => 500,
            JobSizeClass::SmallSelective => 100,
        }
    }

    /// Output-to-input ratio.
    pub fn selectivity(self) -> f64 {
        match self {
            JobSizeClass::LargeHighlySelective => 0.1,
            JobSizeClass::MediumInflating => 2.0,
            JobSizeClass::MediumSelective | JobSizeClass::SmallSelective => 0.5,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            JobSizeClass::LargeHighlySelective => "L-HS",
            JobSizeClass::MediumInflating => "M-I",
            JobSizeClass::MediumSelective => "M-S",
            JobSizeClass::SmallSelective => "S-S",
        }
    }
}

/// Configuration of the §5.1 workload suite generator.
///
/// `scale` multiplies task counts so experiments can be sized to the host:
/// the paper runs this suite on a 250-machine cluster; with `scale = 0.1`
/// and a 25-machine cluster the per-machine load — which is what determines
/// packing behaviour — is unchanged.
#[derive(Debug, Clone)]
pub struct WorkloadSuiteConfig {
    /// Number of jobs (paper: "over 200").
    pub n_jobs: usize,
    /// Task-count multiplier applied to every class size.
    pub scale: f64,
    /// Arrival window `[0, horizon]` seconds (paper: 1000 s).
    pub arrival_horizon: f64,
    /// Bytes read by each map task (one stored block each).
    pub map_input_bytes: f64,
    /// Target bytes of shuffle input per reduce task (sets reduce counts).
    pub reduce_input_target: f64,
    /// High/low memory per task in bytes (paper: 8 GB / 2 GB).
    pub mem_high: f64,
    /// Low-memory option.
    pub mem_low: f64,
    /// Machine profile whose capacity caps every task's peak demand
    /// (a task demanding more than any machine is unschedulable).
    pub machine_profile: MachineSpec,
}

impl Default for WorkloadSuiteConfig {
    fn default() -> Self {
        WorkloadSuiteConfig {
            n_jobs: 200,
            scale: 1.0,
            arrival_horizon: 1000.0,
            map_input_bytes: 512.0 * MB,
            reduce_input_target: 2.0 * GB,
            mem_high: 6.0 * GB,
            mem_low: 1.0 * GB,
            machine_profile: MachineSpec::paper_large(),
        }
    }
}

impl WorkloadSuiteConfig {
    /// The paper-scale suite (200 jobs, full class sizes).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A laptop-scale suite preserving per-machine load when paired with a
    /// proportionally smaller cluster.
    pub fn scaled(n_jobs: usize, scale: f64) -> Self {
        WorkloadSuiteConfig {
            n_jobs,
            scale,
            ..Self::default()
        }
    }

    /// A tiny suite for unit/integration tests (seconds to simulate).
    /// Demands are capped to the *small* machine profile so tests can run
    /// the workload on either cluster flavour.
    pub fn small() -> Self {
        WorkloadSuiteConfig {
            n_jobs: 12,
            scale: 0.02,
            arrival_horizon: 200.0,
            machine_profile: MachineSpec::paper_small(),
            ..Self::default()
        }
    }

    /// Generate the workload from a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = WorkloadBuilder::new().with_demand_cap(self.machine_profile.capacity());
        for jn in 0..self.n_jobs {
            let class = JobSizeClass::ALL[rng.gen_range(0..JobSizeClass::ALL.len())];
            let arrival = rng.gen_range(0.0..self.arrival_horizon);
            self.add_job(&mut b, &mut rng, jn, class, arrival);
        }
        b.finish()
    }

    /// Append one job of the given class (public so tests and the Fig-10
    /// deep-DAG variant can compose suites manually).
    pub fn add_job(
        &self,
        b: &mut WorkloadBuilder,
        rng: &mut StdRng,
        ordinal: usize,
        class: JobSizeClass,
        arrival: f64,
    ) {
        let n_maps = ((class.map_tasks() as f64 * self.scale).round() as usize).max(2);
        let sel = class.selectivity();
        let map_out = self.map_input_bytes * sel;
        let total_shuffle = map_out * n_maps as f64;
        let n_reduces =
            ((total_shuffle / self.reduce_input_target).round() as usize).clamp(1, n_maps.max(1));
        let reduce_in = total_shuffle / n_reduces as f64;

        let job = b.begin_job(format!("{}-{}", class.label(), ordinal), None, arrival);

        // Per-stage choices (paper: per-stage high/low mem and cpu).
        let map_mem = if rng.gen_bool(0.5) {
            self.mem_high
        } else {
            self.mem_low
        };
        let map_cpu_heavy = rng.gen_bool(0.5);
        let red_mem = if rng.gen_bool(0.5) {
            self.mem_high
        } else {
            self.mem_low
        };
        let red_cpu_heavy = rng.gen_bool(0.5);

        let map_base_dur = if map_cpu_heavy {
            rng.gen_range(60.0..180.0)
        } else {
            rng.gen_range(20.0..60.0)
        };
        let red_base_dur = if red_cpu_heavy {
            rng.gen_range(60.0..180.0)
        } else {
            rng.gen_range(20.0..60.0)
        };

        // Pre-draw per-task jitters to keep rng use deterministic in order.
        let map_inputs: Vec<InputSpec> = (0..n_maps)
            .map(|_| b.stored_input(self.map_input_bytes))
            .collect();
        let map_jitter: Vec<(f64, f64)> = (0..n_maps)
            .map(|_| (rng.gen_range(0.9..1.1), rng.gen_range(0.96..1.04)))
            .collect();
        b.add_stage(job, "map", vec![], n_maps, |i| {
            let (dj, mj) = map_jitter[i];
            stage_task(
                map_cpu_heavy,
                map_mem * mj,
                map_base_dur * dj,
                vec![map_inputs[i]],
                map_out,
            )
        });

        let red_jitter: Vec<(f64, f64)> = (0..n_reduces)
            .map(|_| (rng.gen_range(0.9..1.1), rng.gen_range(0.96..1.04)))
            .collect();
        b.add_stage(job, "reduce", vec![0], n_reduces, |i| {
            let (dj, mj) = red_jitter[i];
            stage_task(
                red_cpu_heavy,
                red_mem * mj,
                red_base_dur * dj,
                vec![InputSpec {
                    source: InputSource::Shuffle { stage: 0 },
                    bytes: reduce_in,
                }],
                // Reduce output is written to the local disk (final output).
                reduce_in * sel.min(1.0),
            )
        });
    }
}

/// Build one task's params from the stage-level high/low cpu choice.
fn stage_task(
    cpu_heavy: bool,
    mem: f64,
    duration: f64,
    inputs: Vec<InputSpec>,
    output_bytes: f64,
) -> TaskParams {
    if cpu_heavy {
        TaskParams {
            cores: 4.0,
            mem,
            duration,
            cpu_frac: 1.0,
            // CPU-heavy tasks do a lot of computation per byte: their peak
            // IO demands are low (IO could finish in half the duration).
            io_burst: 2.0,
            inputs,
            output_bytes,
            remote_frac: 1.0,
        }
    } else {
        TaskParams {
            cores: 1.0,
            mem,
            duration,
            cpu_frac: 0.5,
            // IO-bound: streaming the bytes takes the whole duration.
            io_burst: 1.0,
            inputs,
            output_bytes,
            remote_frac: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::InputSource;

    #[test]
    fn generates_requested_job_count() {
        let w = WorkloadSuiteConfig::small().generate(1);
        assert_eq!(w.jobs.len(), 12);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadSuiteConfig::small();
        assert_eq!(cfg.generate(42), cfg.generate(42));
        assert_ne!(cfg.generate(42), cfg.generate(43));
    }

    #[test]
    fn jobs_are_two_stage_mapreduce() {
        let w = WorkloadSuiteConfig::small().generate(3);
        for j in &w.jobs {
            assert_eq!(j.stages.len(), 2);
            assert_eq!(j.stages[0].name, "map");
            assert_eq!(j.stages[1].deps, vec![0]);
            for t in &j.stages[1].tasks {
                assert!(matches!(
                    t.inputs[0].source,
                    InputSource::Shuffle { stage: 0 }
                ));
            }
        }
    }

    #[test]
    fn arrivals_within_horizon() {
        let cfg = WorkloadSuiteConfig::small();
        let w = cfg.generate(9);
        for j in &w.jobs {
            assert!(j.arrival >= 0.0 && j.arrival < cfg.arrival_horizon);
        }
    }

    #[test]
    fn shuffle_bytes_conserved() {
        // Total reduce input equals total map output per job.
        let w = WorkloadSuiteConfig::small().generate(5);
        for j in &w.jobs {
            let map_out: f64 = j.stages[0].tasks.iter().map(|t| t.output_bytes).sum();
            let red_in: f64 = j.stages[1].tasks.iter().map(|t| t.input_bytes()).sum();
            assert!(
                (map_out - red_in).abs() < 1.0,
                "{}: {map_out} vs {red_in}",
                j.name
            );
        }
    }

    #[test]
    fn class_sizes_scale() {
        let cfg = WorkloadSuiteConfig {
            n_jobs: 40,
            scale: 0.1,
            ..WorkloadSuiteConfig::default()
        };
        let w = cfg.generate(7);
        // Large class should have ~200 maps, small ~10.
        let max_stage = w.jobs.iter().map(|j| j.stages[0].len()).max().unwrap();
        let min_stage = w.jobs.iter().map(|j| j.stages[0].len()).min().unwrap();
        assert!(max_stage >= 150, "max {max_stage}");
        assert!(min_stage <= 20, "min {min_stage}");
    }

    #[test]
    fn paper_scale_class_sizes() {
        assert_eq!(JobSizeClass::LargeHighlySelective.map_tasks(), 2000);
        assert_eq!(JobSizeClass::SmallSelective.map_tasks(), 100);
        assert_eq!(JobSizeClass::MediumInflating.selectivity(), 2.0);
    }

    #[test]
    fn inflating_jobs_write_more_than_they_read() {
        let w = WorkloadSuiteConfig::small().generate(11);
        let inflating: Vec<_> = w
            .jobs
            .iter()
            .filter(|j| j.name.starts_with("M-I"))
            .collect();
        assert!(!inflating.is_empty(), "seed should produce an M-I job");
        for j in inflating {
            let read: f64 = j.stages[0].tasks.iter().map(|t| t.input_bytes()).sum();
            let written: f64 = j.stages[0].tasks.iter().map(|t| t.output_bytes).sum();
            assert!(written > read);
        }
    }
}
