//! Mixed batch + serving workload generator (ROADMAP item 3).
//!
//! Services are modeled as *replica waves*: a long-running service under a
//! diurnal load curve needs `peak_replicas × load(t)` replicas up at time
//! `t`, so the generator emits one single-stage job per sample point of
//! the curve, each holding that wave's replicas as long-lived, CPU+memory
//! tasks. Every wave job carries the typed serving spec — `JobClass::
//! Service` with the SLO and curve, an elevated [`PriorityClass`], and
//! spread [`PlacementConstraints`] — so schedulers see services through
//! the same spec API as batch work.
//!
//! A batch backlog (suite-style map/reduce jobs, all arriving at t = 0)
//! saturates the cluster underneath; at curve peaks the services can only
//! start on time if the scheduler preempts strictly-lower-priority batch
//! tasks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tetris_resources::units::GB;
use tetris_resources::MachineSpec;

use crate::gen::builder::{TaskParams, WorkloadBuilder};
use crate::gen::suite::{JobSizeClass, WorkloadSuiteConfig};
use crate::spec::{DiurnalCurve, PlacementConstraints, PriorityClass, Workload};

/// Configuration of the mixed batch + serving generator.
#[derive(Debug, Clone)]
pub struct ServingMixConfig {
    /// Number of distinct services.
    pub n_services: usize,
    /// Replica waves per service: sample points of the diurnal curve over
    /// one period. Each wave is one service job.
    pub waves: usize,
    /// Diurnal period in seconds; waves arrive at `k × period / waves`.
    pub period: f64,
    /// Replicas per service at curve peak (load multiplier 1.0).
    pub peak_replicas: usize,
    /// Seconds each replica runs at peak allocation.
    pub replica_duration: f64,
    /// Cores per replica.
    pub replica_cores: f64,
    /// Memory per replica in bytes.
    pub replica_mem: f64,
    /// Placement-latency SLO in seconds for every service.
    pub slo_latency: f64,
    /// Priority of every service job (batch backlog stays at the default
    /// lowest class).
    pub priority: PriorityClass,
    /// Spread floor for each wave: replicas must span at least this many
    /// machines (`None` = unconstrained).
    pub spread: Option<usize>,
    /// The diurnal load shape shared by all services.
    pub curve: DiurnalCurve,
    /// Number of backlog batch jobs (all arrive at t = 0).
    pub batch_jobs: usize,
    /// Suite configuration the backlog jobs are drawn from.
    pub batch: WorkloadSuiteConfig,
    /// Machine profile capping every task's peak demand.
    pub machine_profile: MachineSpec,
}

impl Default for ServingMixConfig {
    fn default() -> Self {
        ServingMixConfig {
            n_services: 4,
            waves: 8,
            period: 800.0,
            peak_replicas: 24,
            replica_duration: 100.0,
            replica_cores: 2.0,
            replica_mem: 3.0 * GB,
            slo_latency: 15.0,
            priority: PriorityClass::SERVICE,
            spread: Some(4),
            curve: DiurnalCurve {
                period: 800.0,
                points: vec![0.25, 0.45, 0.8, 1.0, 0.85, 0.55, 0.35, 0.2],
            },
            batch_jobs: 16,
            batch: WorkloadSuiteConfig::scaled(16, 0.05),
            machine_profile: MachineSpec::paper_large(),
        }
    }
}

impl ServingMixConfig {
    /// A laptop-scale mix for the 20-machine default cluster. `scale`
    /// multiplies replica counts and the batch backlog (CI smokes use
    /// e.g. 0.2).
    pub fn laptop(scale: f64) -> Self {
        let d = Self::default();
        ServingMixConfig {
            peak_replicas: ((d.peak_replicas as f64 * scale).round() as usize).max(2),
            batch_jobs: ((d.batch_jobs as f64 * scale).round() as usize).max(2),
            spread: d
                .spread
                .map(|s| ((s as f64 * scale).round() as usize).clamp(1, 4)),
            ..d
        }
    }

    /// Arrival time of wave `k`.
    pub fn wave_arrival(&self, k: usize) -> f64 {
        k as f64 * self.period / self.waves as f64
    }

    /// Replica count of one service's wave `k` (at least 1).
    pub fn wave_replicas(&self, k: usize) -> usize {
        let load = self.curve.load_at(self.wave_arrival(k));
        ((self.peak_replicas as f64 * load).round() as usize).max(1)
    }

    /// Generate the mixed workload from a seed. Batch backlog jobs come
    /// first (dense low job ids), then each service's waves in time
    /// order — all from one deterministic rng stream.
    pub fn generate(&self, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = WorkloadBuilder::new().with_demand_cap(self.machine_profile.capacity());

        // Batch backlog: suite-style jobs, all already queued at t = 0.
        for jn in 0..self.batch_jobs {
            let class = JobSizeClass::ALL[rng.gen_range(0..JobSizeClass::ALL.len())];
            self.batch.add_job(&mut b, &mut rng, jn, class, 0.0);
        }

        // Service replica waves.
        for svc in 0..self.n_services {
            let family = format!("svc{svc}");
            // Per-service deterministic jitter so services are not clones.
            let dur_jitter = rng.gen_range(0.9..1.1);
            let mem_jitter = rng.gen_range(0.9..1.1);
            for k in 0..self.waves {
                let replicas = self.wave_replicas(k);
                let constraints = match self.spread {
                    Some(s) => PlacementConstraints::none().with_spread(s.min(replicas)),
                    None => PlacementConstraints::none(),
                };
                let job = b.begin_service_job(
                    format!("{family}-w{k}"),
                    Some(family.clone()),
                    self.wave_arrival(k),
                    self.priority,
                    self.slo_latency,
                    self.curve.clone(),
                    constraints,
                );
                let cores = self.replica_cores;
                let mem = self.replica_mem * mem_jitter;
                let duration = self.replica_duration * dur_jitter;
                b.add_stage(job, "replicas", vec![], replicas, |_| TaskParams {
                    cores,
                    mem,
                    duration,
                    cpu_frac: 1.0,
                    // Pure CPU+memory replicas: no IO flows.
                    io_burst: 1.0,
                    inputs: vec![],
                    output_bytes: 0.0,
                    remote_frac: 0.0,
                });
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_backlog_plus_waves() {
        let cfg = ServingMixConfig::laptop(0.5);
        let w = cfg.generate(7);
        assert_eq!(w.jobs.len(), cfg.batch_jobs + cfg.n_services * cfg.waves);
        assert!(w.validate().is_ok());
        let services: Vec<_> = w.jobs.iter().filter(|j| j.class.is_service()).collect();
        assert_eq!(services.len(), cfg.n_services * cfg.waves);
        for j in &services {
            assert_eq!(j.priority, cfg.priority);
            assert_eq!(j.class.slo_latency(), Some(cfg.slo_latency));
            assert!(j.constraints.spread.is_some());
            assert_eq!(j.stages.len(), 1);
        }
        // Backlog is all-batch, lowest priority, arriving at 0.
        for j in w.jobs.iter().filter(|j| !j.class.is_service()) {
            assert_eq!(j.priority, PriorityClass::BATCH);
            assert_eq!(j.arrival, 0.0);
        }
    }

    #[test]
    fn wave_sizes_follow_curve() {
        let cfg = ServingMixConfig::default();
        let sizes: Vec<usize> = (0..cfg.waves).map(|k| cfg.wave_replicas(k)).collect();
        let peak = *sizes.iter().max().unwrap();
        let trough = *sizes.iter().min().unwrap();
        assert_eq!(peak, cfg.peak_replicas);
        assert!(trough < peak / 2, "diurnal swing expected: {sizes:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ServingMixConfig::laptop(0.3);
        assert_eq!(cfg.generate(42), cfg.generate(42));
        assert_ne!(cfg.generate(42), cfg.generate(43));
    }

    #[test]
    fn replicas_run_for_their_duration() {
        let cfg = ServingMixConfig::laptop(0.3);
        let w = cfg.generate(1);
        let svc = w.jobs.iter().find(|j| j.class.is_service()).unwrap();
        let t = &svc.stages[0].tasks[0];
        // CPU-bound, no IO: ideal duration = cpu_work / cores ≈ jittered
        // replica_duration (zero-IO tasks must not be zero-work).
        assert!(t.ideal_duration() > 0.5 * cfg.replica_duration);
        assert!(t.inputs.is_empty());
        assert_eq!(t.output_bytes, 0.0);
    }
}
