//! Facebook-like trace generator.
//!
//! The paper's simulations replay a proprietary Facebook production trace.
//! This generator is a calibrated substitute: it produces a workload whose
//! published statistics match §2.2.2 —
//!
//! * wide per-resource demand ranges (minimum 5–10× below the median,
//!   maximum ~50× above) with high coefficients of variation;
//! * near-zero correlation of demand *across* resources (Table 2), because
//!   each stage's CPU, memory, duration and IO shape are drawn
//!   independently;
//! * low demand variation *within* a stage (tasks of a phase do the same
//!   computation on different partitions, §4.1);
//! * heavy-tailed job sizes and Poisson arrivals;
//! * recurring job families (analytics jobs repeat on new data, §4.1),
//!   which the demand estimator exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_shim::LogNormal;
use tetris_resources::units::{GB, MB};
use tetris_resources::MachineSpec;

use crate::gen::builder::{TaskParams, WorkloadBuilder};
use crate::spec::{InputSource, InputSpec, Workload};

/// Minimal log-normal sampler (avoids pulling in `rand_distr` — justified
/// in DESIGN.md's dependency note; the two-line Box–Muller version below is
/// all we need).
mod rand_distr_shim {
    use rand::Rng;

    /// Log-normal distribution parameterized by the ln-space mean and σ.
    #[derive(Debug, Clone, Copy)]
    pub struct LogNormal {
        mu: f64,
        sigma: f64,
    }

    impl LogNormal {
        /// `median` is exp(mu); `sigma` is the ln-space standard deviation.
        pub fn from_median(median: f64, sigma: f64) -> Self {
            LogNormal {
                mu: median.ln(),
                sigma,
            }
        }

        /// Draw one sample.
        pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
            // Box–Muller.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.mu + self.sigma * z).exp()
        }
    }
}

/// Configuration of the Facebook-like trace generator.
#[derive(Debug, Clone)]
pub struct FacebookTraceConfig {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Task-count multiplier (see [`crate::WorkloadSuiteConfig::scale`]).
    pub scale: f64,
    /// Mean job inter-arrival time in seconds (Poisson arrivals).
    pub mean_interarrival: f64,
    /// Fraction of jobs that belong to a recurring family.
    pub recurring_fraction: f64,
    /// Number of recurring families to draw from.
    pub n_families: usize,
    /// Fraction of jobs that are map-only.
    pub map_only_fraction: f64,
    /// Fraction of jobs with a second reduce stage (3-stage chain),
    /// approximating the deeper Bing/Scope DAGs.
    pub deep_dag_fraction: f64,
    /// Machine profile whose capacity caps every task's peak demand.
    pub machine_profile: MachineSpec,
}

impl Default for FacebookTraceConfig {
    fn default() -> Self {
        FacebookTraceConfig {
            n_jobs: 300,
            scale: 0.1,
            mean_interarrival: 8.0,
            recurring_fraction: 0.4,
            n_families: 20,
            map_only_fraction: 0.2,
            deep_dag_fraction: 0.1,
            machine_profile: MachineSpec::paper_large(),
        }
    }
}

/// Per-stage demand template; all tasks of a stage share it (with small
/// per-task jitter). Templates are what recur across jobs of a family.
#[derive(Debug, Clone)]
struct StageTemplate {
    cores: f64,
    mem: f64,
    duration: f64,
    cpu_frac: f64,
    io_burst: f64,
    input_per_task: f64,
    selectivity: f64,
    net_rate: f64,
}

impl StageTemplate {
    fn draw(rng: &mut StdRng, local_biased: bool) -> Self {
        // Independent draws per dimension → near-zero cross-resource
        // correlation (Table 2). Wide log-normals → high CoV (Fig. 2).
        let cores: f64 = *[0.25, 0.5, 1.0, 1.0, 2.0, 4.0]
            .get(rng.gen_range(0..6usize))
            .unwrap();
        // Memory scales mildly with core count (the paper's Table 2 finds
        // cores↔memory is the one moderately correlated pair).
        let mem = (LogNormal::from_median(2.0 * GB, 0.7).sample(rng) * cores.powf(0.45))
            .clamp(0.2 * GB, 24.0 * GB);
        let duration = LogNormal::from_median(32.0, 0.7)
            .sample(rng)
            .clamp(5.0, 600.0);
        let cpu_frac = rng.gen_range(0.3..1.0);
        let io_burst = rng.gen_range(1.0..3.0);
        let input_per_task = LogNormal::from_median(420.0 * MB, 1.0)
            .sample(rng)
            .clamp(8.0 * MB, 4.0 * GB);
        let selectivity = LogNormal::from_median(0.6, 0.8)
            .sample(rng)
            .clamp(0.02, 4.0);
        // Network-in demand: map stages read stored blocks and are usually
        // placed data-local (zero expected network-in); shuffle stages pull
        // input remotely at a fetch rate bounded by fetch parallelism, not
        // by the disk — so it is drawn *independently* of the disk rates.
        // This independence is what keeps disk and network demands
        // uncorrelated (Table 2).
        let net_rate = if local_biased && rng.gen_bool(0.7) {
            0.0
        } else {
            LogNormal::from_median(30.0 * MB, 1.1)
                .sample(rng)
                .clamp(0.5 * MB, 120.0 * MB)
        };
        StageTemplate {
            cores,
            mem,
            duration,
            cpu_frac,
            io_burst,
            input_per_task,
            selectivity,
            net_rate,
        }
    }

    fn task(&self, jitter: (f64, f64), inputs: Vec<InputSpec>, output_bytes: f64) -> TaskParams {
        let (dj, mj) = jitter;
        // Express the independently drawn network rate as a fraction of the
        // input streaming rate (TaskParams derives NetIn = rate × frac).
        let in_bytes: f64 = inputs.iter().map(|i| i.bytes).sum();
        let io_time = (self.duration * dj / self.io_burst).max(1e-6);
        let read_rate = if in_bytes > 0.0 {
            in_bytes / io_time
        } else {
            0.0
        };
        let remote_frac = if read_rate > 0.0 {
            (self.net_rate / read_rate).clamp(0.0, 1.0)
        } else {
            0.0
        };
        TaskParams {
            cores: self.cores,
            mem: self.mem * mj,
            duration: self.duration * dj,
            cpu_frac: self.cpu_frac,
            io_burst: self.io_burst,
            inputs,
            output_bytes,
            remote_frac,
        }
    }
}

/// Job shape (stage count) drawn per job.
#[derive(Debug, Clone)]
struct JobTemplate {
    n_maps: usize,
    map: StageTemplate,
    reduce: Option<StageTemplate>,
    reduce2: Option<StageTemplate>,
}

impl FacebookTraceConfig {
    /// Generate the trace from a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        // Pre-draw family templates so recurring jobs share them.
        let families: Vec<JobTemplate> = (0..self.n_families)
            .map(|_| self.draw_job_template(&mut rng))
            .collect();

        let mut b = WorkloadBuilder::new().with_demand_cap(self.machine_profile.capacity());
        let mut arrival = 0.0f64;
        for jn in 0..self.n_jobs {
            // Exponential inter-arrivals (Poisson process).
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            arrival += -self.mean_interarrival * u.ln();

            let (template, family) =
                if rng.gen_bool(self.recurring_fraction) && !families.is_empty() {
                    let fi = rng.gen_range(0..families.len());
                    (families[fi].clone(), Some(format!("family-{fi}")))
                } else {
                    (self.draw_job_template(&mut rng), None)
                };
            self.add_job(&mut b, &mut rng, jn, &template, family, arrival);
        }
        b.finish()
    }

    fn draw_job_template(&self, rng: &mut StdRng) -> JobTemplate {
        // Heavy-tailed job sizes: 60 % small, 30 % medium, 10 % large.
        let n_maps_raw = match rng.gen_range(0..10) {
            0..=5 => rng.gen_range(5..50),
            6..=8 => rng.gen_range(50..500),
            _ => rng.gen_range(500..3000),
        };
        let n_maps = ((n_maps_raw as f64 * self.scale).round() as usize).max(1);
        let shape: f64 = rng.gen_range(0.0..1.0);
        let (has_reduce, has_reduce2) = if shape < self.map_only_fraction {
            (false, false)
        } else if shape < self.map_only_fraction + self.deep_dag_fraction {
            (true, true)
        } else {
            (true, false)
        };
        JobTemplate {
            n_maps,
            map: StageTemplate::draw(rng, true),
            reduce: has_reduce.then(|| StageTemplate::draw(rng, false)),
            reduce2: has_reduce2.then(|| StageTemplate::draw(rng, false)),
        }
    }

    fn add_job(
        &self,
        b: &mut WorkloadBuilder,
        rng: &mut StdRng,
        ordinal: usize,
        t: &JobTemplate,
        family: Option<String>,
        arrival: f64,
    ) {
        let job = b.begin_job(format!("fb-{ordinal}"), family, arrival);

        let map_out = t.map.input_per_task * t.map.selectivity;
        let map_inputs: Vec<InputSpec> = (0..t.n_maps)
            .map(|_| b.stored_input(t.map.input_per_task))
            .collect();
        let jitters: Vec<(f64, f64)> = (0..t.n_maps)
            .map(|_| (rng.gen_range(0.85..1.15), rng.gen_range(0.96..1.04)))
            .collect();
        let map_tmpl = t.map.clone();
        b.add_stage(job, "map", vec![], t.n_maps, |i| {
            map_tmpl.task(jitters[i], vec![map_inputs[i]], map_out)
        });

        let mut upstream_out = map_out * t.n_maps as f64;
        for (si, tmpl) in [&t.reduce, &t.reduce2].into_iter().flatten().enumerate() {
            // Chain: reduce1 depends on stage 0 (map), reduce2 on stage 1.
            let up = si;
            // Reduce count sized so each task gets ~its template input.
            let n =
                ((upstream_out / tmpl.input_per_task).round() as usize).clamp(1, (t.n_maps).max(1));
            let per_task_in = upstream_out / n as f64;
            let out = per_task_in * tmpl.selectivity;
            let jitters: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.85..1.15), rng.gen_range(0.96..1.04)))
                .collect();
            let tmpl = tmpl.clone();
            b.add_stage(job, format!("reduce{}", si + 1), vec![up], n, |i| {
                tmpl.task(
                    jitters[i],
                    vec![InputSpec {
                        source: InputSource::Shuffle { stage: up },
                        bytes: per_task_in,
                    }],
                    out,
                )
            });
            upstream_out = out * n as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FacebookTraceConfig {
        FacebookTraceConfig {
            n_jobs: 60,
            scale: 0.05,
            ..FacebookTraceConfig::default()
        }
    }

    #[test]
    fn generates_and_validates() {
        let w = small().generate(1);
        assert_eq!(w.jobs.len(), 60);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(small().generate(5), small().generate(5));
        assert_ne!(small().generate(5), small().generate(6));
    }

    #[test]
    fn has_recurring_families() {
        let w = small().generate(2);
        let fams: Vec<_> = w.jobs.iter().filter_map(|j| j.family.clone()).collect();
        assert!(
            fams.len() >= 10,
            "expected ≥10 recurring jobs, got {}",
            fams.len()
        );
        // At least one family should repeat.
        let mut sorted = fams.clone();
        sorted.sort();
        sorted.dedup();
        assert!(sorted.len() < fams.len(), "no family repeats");
    }

    #[test]
    fn recurring_jobs_share_stage_shape() {
        let w = small().generate(3);
        use std::collections::HashMap;
        let mut by_family: HashMap<&str, Vec<&crate::JobSpec>> = HashMap::new();
        for j in &w.jobs {
            if let Some(f) = &j.family {
                by_family.entry(f).or_default().push(j);
            }
        }
        let repeated = by_family.values().find(|v| v.len() >= 2);
        if let Some(jobs) = repeated {
            let a = jobs[0];
            let b = jobs[1];
            assert_eq!(a.stages.len(), b.stages.len());
            // Same template → same per-stage core demand.
            assert_eq!(
                a.stages[0].tasks[0]
                    .demand
                    .get(tetris_resources::Resource::Cpu),
                b.stages[0].tasks[0]
                    .demand
                    .get(tetris_resources::Resource::Cpu),
            );
        }
    }

    #[test]
    fn arrivals_increase() {
        let w = small().generate(4);
        for win in w.jobs.windows(2) {
            assert!(win[1].arrival >= win[0].arrival);
        }
    }

    #[test]
    fn mix_of_dag_shapes() {
        let cfg = FacebookTraceConfig {
            n_jobs: 200,
            scale: 0.02,
            ..FacebookTraceConfig::default()
        };
        let w = cfg.generate(8);
        let map_only = w.jobs.iter().filter(|j| j.stages.len() == 1).count();
        let two_stage = w.jobs.iter().filter(|j| j.stages.len() == 2).count();
        let deep = w.jobs.iter().filter(|j| j.stages.len() == 3).count();
        assert!(map_only > 10, "map-only {map_only}");
        assert!(two_stage > 80, "two-stage {two_stage}");
        assert!(deep > 5, "deep {deep}");
    }

    #[test]
    fn job_sizes_are_heavy_tailed() {
        let cfg = FacebookTraceConfig {
            n_jobs: 300,
            scale: 1.0,
            ..FacebookTraceConfig::default()
        };
        let w = cfg.generate(9);
        let sizes: Vec<f64> = w.jobs.iter().map(|j| j.num_tasks() as f64).collect();
        let med = crate::stats::median(&sizes);
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(max / med > 10.0, "max {max} median {med}");
    }
}
