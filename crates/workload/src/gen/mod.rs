//! Seeded workload generators.
//!
//! Three generators cover the paper's evaluation inputs:
//!
//! * [`WorkloadSuiteConfig`] — the deployment workload suite of §5.1;
//! * [`FacebookTraceConfig`] — a Facebook-like trace calibrated to the
//!   statistics of §2.2.2 (used by the simulation experiments);
//! * [`motivating_example`] — the exact three-job workload of Figure 1.
//!
//! All generators are pure functions of their configuration and a seed.

mod builder;
mod examples;
mod facebook;
mod serving;
mod suite;

pub use builder::{TaskParams, WorkloadBuilder};
pub use examples::{diamond_dag, motivating_example, two_job_packing_example, MotivatingExample};
pub use facebook::FacebookTraceConfig;
pub use serving::ServingMixConfig;
pub use suite::{JobSizeClass, WorkloadSuiteConfig};
