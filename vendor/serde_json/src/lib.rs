//! Offline stand-in for `serde_json`, paired with the vendored `serde`.
//!
//! Provides the entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`] — over the
//! JSON-direct [`serde::Value`] model. Floats render via Rust's shortest
//! round-trip formatting and parse with `str::parse::<f64>`, so
//! serialize → parse is value-exact (the `float_roundtrip` behaviour the
//! workspace requests from real serde_json).

#![forbid(unsafe_code)]

use std::io;

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_json(&mut out);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_json_pretty(&mut out, 0);
    Ok(out)
}

/// Serialize as compact JSON into a writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

/// Serialize as indented JSON into a writer.
pub fn to_writer_pretty<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value)
}

/// Parse a string into a [`Value`] tree, requiring it be fully consumed.
pub fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if !negative {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(Value::U64(n));
                }
            } else if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("0.1").unwrap(), 0.1);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn float_value_exact_roundtrip() {
        for &x in &[
            0.1f64,
            1.0 / 3.0,
            6.25e-3,
            1e300,
            -0.0,
            123_456_789.123_456_79,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
    }
}
