//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serialization framework under the same crate name. Unlike
//! real serde's format-agnostic visitor architecture, this one is
//! JSON-direct: [`Serialize`] lowers a value into a [`Value`] tree and
//! [`Deserialize`] rebuilds it from one. `serde_json` (also vendored)
//! renders and parses that tree.
//!
//! Supported shapes match what the workspace derives: named-field
//! structs, tuple/newtype structs (`#[serde(transparent)]` honoured),
//! and externally-tagged enums with unit/tuple/named variants — the same
//! wire format real serde produces for these types.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number (NaN/∞ render as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

static JSON_NULL: Value = Value::Null;

impl Value {
    /// Object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Field lookup used by derived `Deserialize` impls: returns `Null`
    /// for missing keys so `Option` fields tolerate absence.
    pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&JSON_NULL)
    }

    /// Render as compact JSON.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::F64(x) => {
                if x.is_finite() {
                    use fmt::Write;
                    // `{:?}` is Rust's shortest round-trip float form and
                    // always valid JSON (e.g. `1.0`, `6.25e-3`).
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Render as indented JSON.
    pub fn write_json_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.extend(std::iter::repeat_n(' ', indent + STEP));
                    v.write_json_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', indent));
                out.push(']');
            }
            Value::Obj(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.extend(std::iter::repeat_n(' ', indent + STEP));
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write_json_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', indent));
                out.push('}');
            }
            other => other.write_json(out),
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Annotate the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        Error {
            msg: format!("{field}: {}", self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into a JSON [`Value`].
pub trait Serialize {
    /// Produce the JSON tree for this value.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse the JSON tree into this type.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                        x as u64
                    }
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => x as i64,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + std::borrow::ToOwned + ?Sized> Serialize for std::borrow::Cow<'_, T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for std::borrow::Cow<'_, str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(std::borrow::Cow::Owned)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_render_roundtrips_shortest() {
        let mut out = String::new();
        Value::F64(0.1).write_json(&mut out);
        assert_eq!(out, "0.1");
        out.clear();
        Value::F64(f64::NAN).write_json(&mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        Value::Str("a\"b\\c\nd\u{1}".into()).write_json(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(Value::field(&obj, "a"), &Value::U64(1));
        assert_eq!(Value::field(&obj, "b"), &Value::Null);
        let opt: Option<u64> = Deserialize::from_value(Value::field(&obj, "b")).unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn u64_max_roundtrip() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn triple_roundtrip() {
        let t = (3u64, "x".to_string(), -1i64);
        let v = t.to_value();
        let back: (u64, String, i64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
        let wrong: Result<(u64, String, i64), _> = Deserialize::from_value(&Value::Arr(vec![]));
        assert!(wrong.is_err());
    }
}
