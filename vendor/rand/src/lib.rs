//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses: a
//! deterministic seedable generator ([`rngs::StdRng`]) and the [`Rng`]
//! convenience methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically
//! strong for simulation purposes and fully reproducible from a `u64`
//! seed. Note the streams differ from upstream rand's ChaCha-based
//! `StdRng`; the workspace never relies on upstream's exact streams,
//! only on determinism for a fixed seed.

#![forbid(unsafe_code)]

/// A source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}
int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` (`span > 0`) by widening multiply — avoids
/// modulo bias well past any span the workspace uses.
#[inline]
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f = <$t as Standard>::sample_standard(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let f = <$t as Standard>::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`f64`/`f32` in `[0, 1)`, integers over
    /// the full width, `bool` fair).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in `range`. Panics on an empty range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state expanded from the seed with SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Raw xoshiro256++ state, for checkpoint/restore. Restoring via
        /// [`StdRng::from_state`] resumes the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(0u64..=3);
            assert!(w <= 3);
            seen_lo |= w == 0;
            seen_hi |= w == 3;
        }
        assert!(seen_lo && seen_hi, "inclusive range must reach both ends");
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
