//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the criterion API subset its benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: one warm-up iteration, then
//! `sample_size` timed iterations, reporting min / mean / max wall time
//! per iteration. No statistical analysis, outlier rejection, or HTML
//! reports — good enough to compare orders of magnitude (the Table-8
//! use case) without the dependency tree.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Names accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// Render the display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// The timing driver passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Caller-timed variant (upstream `iter_custom`): `routine` receives
    /// an iteration count and returns the measured time for that many
    /// iterations. One warm-up call, then `sample_size` recorded calls of
    /// one iteration each.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        black_box(routine(1));
        for _ in 0..self.target_samples {
            self.samples.push(routine(1));
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_name();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &name, &b.samples);
        self
    }

    /// Run one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.into_name();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &name, &b.samples);
        self
    }

    /// End the group (reporting is per-benchmark; nothing further to do).
    pub fn finish(self) {}
}

fn report(group: &str, name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{name}: no samples (closure never called iter)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{group}/{name}: min {} / mean {} / max {} over {} iterations",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into_name();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: 20,
        };
        f(&mut b);
        report("bench", &name, &b.samples);
        self
    }
}

/// Bundle benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            $(
                {
                    let mut c = $crate::Criterion::default();
                    $target(&mut c);
                }
            )+
        }
    };
}

/// Entry point running the given groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }
}
