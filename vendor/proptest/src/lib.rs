//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of the proptest API its test suites use: the
//! [`strategy::Strategy`] trait (ranges, tuples, [`strategy::Just`],
//! `prop_oneof!`, `prop_map`, collections, `array::uniform6`,
//! `sample::select`, `bool::ANY`) and the [`proptest!`] macro.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the sampled inputs' assertion message as-is) and a fixed
//! deterministic seed derived from the test name, so runs are fully
//! reproducible without a filesystem regression store.

#![forbid(unsafe_code)]

/// Per-test configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! Deterministic randomness for property execution.

    use rand::{Rng, RngCore, SeedableRng};

    /// The generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Seeded from the test name: every run of a given test sees the
        /// same case sequence.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(h))
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.0.gen()
        }

        /// Uniform index in `[0, n)`; `n` must be positive.
        pub fn index(&mut self, n: usize) -> usize {
            self.0.gen_range(0..n)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// One arm of a [`Union`]: a boxed sampler.
    type Arm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice among heterogeneous strategies with a common value
    /// type (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Arm<V>>,
    }

    impl<V> Union<V> {
        /// Empty union; `prop_oneof!` pushes at least one arm.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        /// Add an arm.
        pub fn push<S>(&mut self, s: S)
        where
            S: Strategy<Value = V> + 'static,
        {
            self.arms.push(Box::new(move |rng| s.sample(rng)));
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.index(self.arms.len());
            (self.arms[i])(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let off = (rng.next_u64() as u128 * span) >> 64;
                    self.start.wrapping_add(off as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    let off = (rng.next_u64() as u128 * span) >> 64;
                    lo.wrapping_add(off as $t)
                }
            }
        )*};
    }
    int_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let f = rng.unit_f64() as $t;
                    self.start + f * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let f = rng.unit_f64() as $t;
                    lo + f * (hi - lo)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.index(self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty length range");
            lo + rng.index(hi - lo + 1)
        }
    }

    /// Strategy for `Vec<T>` with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `[T; N]`, each slot drawn from `element`.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    /// Six values from the same strategy (resource-vector shaped).
    pub fn uniform6<S: Strategy>(element: S) -> UniformArray<S, 6> {
        UniformArray { element }
    }
}

pub mod sample {
    //! Sampling from explicit alternatives.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// Result of [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Fair coin strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::new();
        $(union.push($arm);)+
        union
    }};
}

/// Assert inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` runs its
/// body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*` usage.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_oneof_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t1");
        let s = prop_oneof![0.0..=1.0, Just(5.0)];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((0.0..=1.0).contains(&v) || v == 5.0);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        let s = crate::collection::vec(0u64..10, 1..=4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn uniform6_and_select() {
        let mut rng = crate::test_runner::TestRng::deterministic("t3");
        let arr = crate::array::uniform6(1.0f64..2.0).sample(&mut rng);
        assert!(arr.iter().all(|x| (1.0..2.0).contains(x)));
        let pick = crate::sample::select(vec!['a', 'b']).sample(&mut rng);
        assert!(pick == 'a' || pick == 'b');
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 0u64..100, flip in crate::bool::ANY) {
            prop_assert!(x < 100);
            let _ = flip;
        }
    }
}
