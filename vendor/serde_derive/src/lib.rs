//! Derive macros for the vendored serde stand-in.
//!
//! Parses the `DeriveInput` token stream by hand (the offline build has
//! no syn/quote) and emits `impl serde::Serialize` / `impl
//! serde::Deserialize` blocks over the JSON-direct `Value` model.
//!
//! Supported input shapes — exactly what the workspace derives on:
//! non-generic named-field structs, tuple structs, unit structs, and
//! enums with unit / tuple / named-field variants. `#[serde(transparent)]`
//! on single-field structs delegates to the field (the default newtype
//! behaviour already matches real serde's wire format). Named fields may
//! carry `#[serde(default)]` and/or `#[serde(skip_serializing_if =
//! "path")]`, with the same wire semantics as real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
    transparent: bool,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One named field and its serde attributes.
#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: a missing (or null) value deserializes to
    /// `Default::default()` instead of erroring — schema back-compat.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: omit the key entirely
    /// when `path(&field)` is true (e.g. `Option::is_none`,
    /// `Vec::is_empty`) — matches real serde's wire behaviour.
    skip_if: Option<String>,
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ------------------------------------------------------------------ parsing

fn parse_input(ts: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let attrs = skip_attrs(&tokens, &mut i);
    let transparent = attrs.transparent;
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde stub derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: unexpected token after enum name: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };

    Input {
        name,
        kind,
        transparent,
    }
}

/// Serde attributes recognized on an item or a field.
#[derive(Debug, Default)]
struct AttrFlags {
    transparent: bool,
    default: bool,
    skip_if: Option<String>,
}

/// Advance past attributes, collecting the `#[serde(...)]` flags seen.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> AttrFlags {
    let mut flags = AttrFlags::default();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let arg_tokens: Vec<TokenTree> = args.stream().into_iter().collect();
                    let mut j = 0;
                    while j < arg_tokens.len() {
                        if let TokenTree::Ident(id) = &arg_tokens[j] {
                            match id.to_string().as_str() {
                                "transparent" => flags.transparent = true,
                                "default" => flags.default = true,
                                "skip_serializing_if" => {
                                    // Expect `= "path::to::predicate"`.
                                    let lit = match (arg_tokens.get(j + 1), arg_tokens.get(j + 2)) {
                                        (
                                            Some(TokenTree::Punct(p)),
                                            Some(TokenTree::Literal(l)),
                                        ) if p.as_char() == '=' => l.to_string(),
                                        other => panic!(
                                            "serde stub derive: malformed skip_serializing_if: \
                                             {other:?}"
                                        ),
                                    };
                                    flags.skip_if = Some(lit.trim_matches('"').to_string());
                                    j += 2;
                                }
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                }
            }
            *i += 1;
        }
    }
    flags
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected identifier, got {other:?}"),
    }
}

/// Parse `a: T, b: U, ...` fields (with serde attrs) from a brace
/// group's stream.
fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(Field {
            name,
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
        skip_type_until_comma(&tokens, &mut i);
    }
    fields
}

/// Consume type tokens up to (and including) the next top-level comma,
/// tracking `<...>` nesting so generic-argument commas don't split fields.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Count fields of a tuple struct / tuple variant from its paren group.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        skip_type_until_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _ = skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde stub derive: explicit discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------------ codegen

/// Serialize named fields (struct or enum-variant) into an object
/// expression, honouring `skip_serializing_if` by pushing conditionally.
/// `expr` maps a field name to the expression reaching it (`&self.f` for
/// structs, the match binding `f` for variants).
fn named_obj_expr(fields: &[Field], expr: impl Fn(&str) -> String) -> String {
    let mut stmts = String::new();
    for f in fields {
        let name = &f.name;
        let value = expr(name);
        let push =
            format!("entries.push((\"{name}\".to_string(), serde::Serialize::to_value({value})));");
        match &f.skip_if {
            Some(pred) => {
                // `value` is already a reference (`&self.f` or a match
                // binding), matching the predicate's `&T` argument.
                stmts.push_str(&format!("if !{pred}({value}) {{ {push} }}\n"));
            }
            None => {
                stmts.push_str(&push);
                stmts.push('\n');
            }
        }
    }
    format!(
        "{{ let mut entries: Vec<(String, serde::Value)> = Vec::new();\n{stmts}\
         serde::Value::Obj(entries) }}"
    )
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent && fields.len() == 1 {
                format!("serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                named_obj_expr(fields, |f| format!("&self.{f}"))
            }
        }
        Kind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                             serde::Serialize::to_value(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Serialize::to_value(x{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                                 serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let binds = binds.join(", ");
                            let obj = named_obj_expr(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Obj(vec![(\
                                 \"{vn}\".to_string(), {obj})]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Deserialization initializer for one named field within `scope` (the
/// struct name or `Enum::Variant` path, used in error messages).
/// `#[serde(default)]` fields fall back to `Default::default()` when the
/// key is absent (or null — the stub's `Value::field` conflates the two).
fn named_field_init(scope: &str, f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match serde::Value::field(obj, \"{name}\") {{\n\
             serde::Value::Null => Default::default(),\n\
             other => serde::Deserialize::from_value(other)\
             .map_err(|e| e.in_field(\"{scope}.{name}\"))?,\n\
             }},"
        )
    } else {
        format!(
            "{name}: serde::Deserialize::from_value(serde::Value::field(obj, \
             \"{name}\")).map_err(|e| e.in_field(\"{scope}.{name}\"))?,"
        )
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent && fields.len() == 1 {
                format!(
                    "Ok({name} {{ {}: serde::Deserialize::from_value(v)? }})",
                    fields[0].name
                )
            } else {
                let inits: Vec<String> = fields.iter().map(|f| named_field_init(name, f)).collect();
                format!(
                    "let obj = v.as_obj().ok_or_else(|| serde::Error::custom(\
                     \"expected object for {name}\"))?;\n\
                     Ok({name} {{ {} }})",
                    inits.join("\n")
                )
            }
        }
        Kind::TupleStruct(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(&arr[{k}])?,"))
                .collect();
            format!(
                "let arr = v.as_arr().ok_or_else(|| serde::Error::custom(\
                 \"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{ return Err(serde::Error::custom(\
                 \"expected {n} elements for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(" ")
            )
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)\
                             .map_err(|e| e.in_field(\"{name}::{vn}\"))?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&arr[{k}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let arr = inner.as_arr().ok_or_else(|| serde::Error::custom(\
                                 \"expected array for {name}::{vn}\"))?;\n\
                                 if arr.len() != {n} {{ return Err(serde::Error::custom(\
                                 \"expected {n} elements for {name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}({}))\n}}",
                                items.join(" ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let scope = format!("{name}::{vn}");
                            let inits: Vec<String> =
                                fields.iter().map(|f| named_field_init(&scope, f)).collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let obj = inner.as_obj().ok_or_else(|| serde::Error::custom(\
                                 \"expected object for {name}::{vn}\"))?;\n\
                                 Ok({name}::{vn} {{ {} }})\n}}",
                                inits.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => Err(serde::Error::custom(format!(\
                 \"unknown {name} variant {{other:?}}\"))),\n\
                 }},\n\
                 _ => {{\n\
                 let obj = v.as_obj().ok_or_else(|| serde::Error::custom(\
                 \"expected string or object for {name}\"))?;\n\
                 if obj.len() != 1 {{ return Err(serde::Error::custom(\
                 \"expected single-key object for {name}\")); }}\n\
                 let (tag, inner) = &obj[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {}\n\
                 other => Err(serde::Error::custom(format!(\
                 \"unknown {name} variant {{other:?}}\"))),\n\
                 }}\n\
                 }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
